"""Autograd correctness tests: analytic gradients vs finite differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, no_grad, stack, tensor


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-4):
    """Compare autograd gradient with a finite-difference estimate."""
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal(shape)

    t = Tensor(x0, requires_grad=True)
    out = build(t)
    out.backward()
    analytic = t.grad

    numeric = numerical_gradient(lambda arr: build(Tensor(arr, requires_grad=False)).item(), x0)
    assert analytic is not None
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestBasicOps:
    def test_add_gradient(self):
        check_gradient(lambda t: (t + 3.0).sum(), (4, 3))

    def test_mul_gradient(self):
        check_gradient(lambda t: (t * t).sum(), (3, 2))

    def test_sub_and_neg_gradient(self):
        check_gradient(lambda t: (5.0 - t).sum(), (6,))

    def test_div_gradient(self):
        check_gradient(lambda t: (t / 2.5).sum(), (2, 3))

    def test_pow_gradient(self):
        check_gradient(lambda t: ((t * t + 1.0) ** 0.5).sum(), (5,))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(1)
        other = rng.standard_normal((3, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (4, 3))

    def test_matmul_gradient_right_operand(self):
        rng = np.random.default_rng(2)
        left = rng.standard_normal((2, 4))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), (4, 3))

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(3)
        bias = rng.standard_normal((3,))
        check_gradient(lambda t: (t + Tensor(bias)).sum(), (5, 3))

    def test_radd_and_rmul(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 + t) * 2.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])


class TestReductionsAndShape:
    def test_mean_gradient(self):
        check_gradient(lambda t: t.mean(), (4, 5))

    def test_sum_axis_gradient(self):
        check_gradient(lambda t: (t.sum(axis=0) * Tensor([1.0, 2.0, 3.0])).sum(), (4, 3))

    def test_max_gradient(self):
        # Use distinct values so the max is unique and differentiable.
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        t = Tensor(x, requires_grad=True)
        t.max().backward()
        expected = np.zeros((2, 3))
        expected[1, 2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(6) * Tensor(np.arange(6.0))).sum(), (2, 3))

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.transpose() @ Tensor(np.ones((2, 1)))).sum(), (2, 3))

    def test_getitem_gradient(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        t = Tensor(x, requires_grad=True)
        t[0, 1].backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [0.0, 0.0]])

    def test_slice_gradient(self):
        check_gradient(lambda t: t[1:, :2].sum(), (3, 4))


class TestNonlinearities:
    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh().sum(), (3, 3))

    def test_sigmoid_gradient(self):
        check_gradient(lambda t: t.sigmoid().sum(), (7,))

    def test_relu_gradient(self):
        # Offset from zero so the kink is not sampled.
        check_gradient(lambda t: (t + 10.0).relu().sum(), (4,))

    def test_exp_log_gradient(self):
        check_gradient(lambda t: ((t * 0.1).exp() + 2.0).log().sum(), (5,))

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).standard_normal((4, 6)))
        out = t.softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_gradient(self):
        weights = np.random.default_rng(4).standard_normal((3,))
        check_gradient(lambda t: (t.softmax(axis=-1) * Tensor(weights)).sum(), (3,))

    def test_clip_gradient_inside_range(self):
        t = Tensor(np.array([0.5, -0.2]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_clip_gradient_outside_range(self):
        t = Tensor(np.array([5.0, -7.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0])


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * t + t * 3.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [2 * 2.0 + 3.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_without_grad_argument(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_detach_stops_gradients(self):
        t = Tensor([3.0], requires_grad=True)
        out = t.detach() * 2.0
        assert not out.requires_grad

    def test_tensor_constructor_helper(self):
        t = tensor([1, 2, 3], requires_grad=True)
        assert t.requires_grad
        assert t.shape == (3,)


class TestConcatenateAndStack:
    def test_concatenate_values_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_stack_values_and_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])
