"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The shared travel-model conformance suite (tests/spatial/conformance.py)
# is imported by suites in several test directories; make it resolvable
# regardless of which file pytest collects first.
_CONFORMANCE_DIR = Path(__file__).resolve().parent / "spatial"
if str(_CONFORMANCE_DIR) not in sys.path:
    sys.path.insert(0, str(_CONFORMANCE_DIR))

from repro.core.problem import ATAInstance            # noqa: E402
from repro.core.task import Task                      # noqa: E402
from repro.core.worker import Worker                  # noqa: E402
from repro.spatial.geometry import BoundingBox, Point  # noqa: E402
from repro.spatial.grid import GridSpec               # noqa: E402
from repro.spatial.travel import EuclideanTravelModel  # noqa: E402


@pytest.fixture
def unit_travel() -> EuclideanTravelModel:
    """Travel model moving 1 distance unit per time unit."""
    return EuclideanTravelModel(speed=1.0)


@pytest.fixture
def simple_worker() -> Worker:
    """A worker at the origin, reach 5, online for [0, 100)."""
    return Worker(
        worker_id=1,
        location=Point(0.0, 0.0),
        reachable_distance=5.0,
        on_time=0.0,
        off_time=100.0,
        speed=1.0,
    )


@pytest.fixture
def nearby_tasks() -> list:
    """Three tasks close to the origin with generous deadlines."""
    return [
        Task(task_id=1, location=Point(1.0, 0.0), publication_time=0.0, expiration_time=50.0),
        Task(task_id=2, location=Point(2.0, 0.0), publication_time=0.0, expiration_time=50.0),
        Task(task_id=3, location=Point(0.0, 2.0), publication_time=0.0, expiration_time=50.0),
    ]


@pytest.fixture
def paper_example_instance() -> ATAInstance:
    """The running example of Fig. 1 (3 workers, 9 tasks, reach 1.2).

    Travel speed is chosen so that every unit of distance takes one time
    unit, matching the figure's integer timeline.
    """
    speed = 1.0
    workers = [
        Worker(worker_id=1, location=Point(0.5, 1.0), reachable_distance=1.2,
               on_time=1.0, off_time=10.0, speed=speed),
        Worker(worker_id=2, location=Point(2.5, 3.2), reachable_distance=1.2,
               on_time=1.0, off_time=10.0, speed=speed),
        Worker(worker_id=3, location=Point(4.0, 2.2), reachable_distance=1.2,
               on_time=3.0, off_time=10.0, speed=speed),
    ]
    tasks = [
        Task(task_id=1, location=Point(1.5, 1.2), publication_time=1.0, expiration_time=4.0),
        Task(task_id=2, location=Point(2.5, 2.0), publication_time=1.0, expiration_time=6.0),
        Task(task_id=3, location=Point(2.2, 1.5), publication_time=1.0, expiration_time=4.0),
        Task(task_id=4, location=Point(3.2, 1.7), publication_time=1.0, expiration_time=6.0),
        Task(task_id=5, location=Point(1.5, 2.5), publication_time=2.0, expiration_time=8.0),
        Task(task_id=6, location=Point(2.0, 3.2), publication_time=2.0, expiration_time=8.0),
        Task(task_id=7, location=Point(4.0, 1.0), publication_time=4.0, expiration_time=9.0),
        Task(task_id=8, location=Point(1.0, 3.0), publication_time=4.0, expiration_time=8.0),
        Task(task_id=9, location=Point(1.0, 1.7), publication_time=4.0, expiration_time=9.0),
    ]
    return ATAInstance(workers, tasks, travel=EuclideanTravelModel(speed=speed), name="fig1")


@pytest.fixture
def small_grid() -> GridSpec:
    """A 4x4 grid over a 10x10 box."""
    return GridSpec(BoundingBox(0.0, 0.0, 10.0, 10.0), rows=4, cols=4)


@pytest.fixture
def tiny_workload():
    """A miniature Yueche-like workload used by integration tests."""
    from repro.datasets.yueche import generate_yueche

    return generate_yueche(scale=0.02, seed=3)
