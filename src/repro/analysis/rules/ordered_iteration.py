"""Rule ``ordered-iteration`` — set iteration must not feed ordered sinks.

``set`` / ``frozenset`` iteration order is unspecified (and, for strings
or object ids, varies between interpreter runs), so any value that flows
from a set iteration into an *ordered* consumer is a reproducibility bug:
the same input stream can yield a differently-ordered list, a different
float sum, or a different arg-min among tied candidates.

Flagged sinks, for an iterable the local inference proves set-derived:

* ``list(s)`` / ``tuple(s)`` / ``enumerate(s)`` — ordered collection
  built from unordered iteration;
* ``sum(s)`` / ``sum(f(x) for x in s)`` — float summation is
  order-dependent;
* ``min`` / ``max`` **with a ``key=``** — ties are broken by iteration
  order (plain ``min``/``max`` over a total order is order-independent
  and passes);
* ``"sep".join(s)``;
* ``next(iter(s))`` — arbitrary-element selection;
* ``[... for x in s]`` list comprehensions;
* ``for x in s:`` loops whose body appends/extends a list or yields;
* ``.values()`` / ``.keys()`` / ``.items()`` of a dict **built by a
  comprehension over a set** (insertion order inherits the set's).

The blessed fix is ``sorted(s)`` (or ``sorted(s, key=...)`` with a total
key), which this rule never flags.  The inference is local to one
function scope and intentionally conservative: set literals,
``set()`` / ``frozenset()`` calls, set comprehensions, set operators on
known sets, set-annotated parameters, and names assigned from any of
those.  Anything it cannot prove set-typed is trusted — deterministic
dict iteration (insertion-ordered in this codebase) stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Finding, Project, Rule, SourceModule

_SET_OPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_ANNOTATIONS = ("Set", "FrozenSet", "AbstractSet", "set", "frozenset")
_ORDER_SENSITIVE_BODY = {"append", "extend", "insert", "appendleft"}


def _scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_set_annotation(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].split(".")[-1]
    return head in _SET_ANNOTATIONS


class _Scope:
    """Local set-type inference for one function (or module) scope."""

    def __init__(self, root: ast.AST) -> None:
        self.known_sets: Set[str] = set()
        self.set_derived_dicts: Set[str] = set()
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = root.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                if arg.annotation is not None and _is_set_annotation(arg.annotation):
                    self.known_sets.add(arg.arg)
        for node in _scope_walk(root):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self.is_set_expr(node.value):
                        self.known_sets.add(target.id)
                    elif isinstance(
                        node.value, ast.DictComp
                    ) and self.iterates_set(node.value.generators[0].iter):
                        self.set_derived_dicts.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_set_annotation(node.annotation):
                    self.known_sets.add(node.target.id)

    # ------------------------------------------------------------------ #
    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.known_sets
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
        return False

    def iterates_set(self, node: ast.AST) -> bool:
        """True when iterating ``node`` yields elements in set order."""
        if self.is_set_expr(node):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("values", "keys", "items") and isinstance(
                node.func.value, ast.Name
            ):
                return node.func.value.id in self.set_derived_dicts
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self.iterates_set(node.generators[0].iter)
        return False


class OrderedIterationRule(Rule):
    rule_id = "ordered-iteration"
    description = "set/frozenset iteration order must not reach ordered sinks"

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if not self.config.is_deterministic_module(module.relpath):
                continue
            yield from self._check_scope(module, module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_scope(module, node)

    # ------------------------------------------------------------------ #
    def _check_scope(
        self, module: SourceModule, root: ast.AST
    ) -> Iterator[Finding]:
        scope = _Scope(root)

        def finding(node: ast.AST, sink: str, expr: ast.AST) -> Finding:
            source = ast.unparse(expr)
            if len(source) > 60:
                source = source[:57] + "..."
            return Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                message=f"{sink} over set-ordered iteration of `{source}`",
                symbol=source,
            )

        for node in _scope_walk(root):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, scope, finding)
            elif isinstance(node, ast.ListComp):
                if scope.iterates_set(node.generators[0].iter):
                    yield finding(
                        node, "list comprehension", node.generators[0].iter
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if scope.iterates_set(node.iter) and self._body_order_sensitive(
                    node.body
                ):
                    yield finding(node, "ordered accumulation in loop", node.iter)

    def _check_call(self, node: ast.Call, scope: _Scope, finding) -> Iterator[Finding]:
        func = node.func
        first = node.args[0] if node.args else None
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("list", "tuple", "enumerate") and first is not None:
                if scope.iterates_set(first):
                    yield finding(node, f"`{name}()`", first)
            elif name == "sum" and first is not None:
                if scope.iterates_set(first):
                    yield finding(node, "order-dependent `sum()`", first)
            elif name in ("min", "max") and first is not None:
                has_key = any(kw.arg == "key" for kw in node.keywords)
                if has_key and scope.iterates_set(first):
                    yield finding(node, f"tie-breaking `{name}(key=...)`", first)
            elif name == "next" and first is not None:
                if (
                    isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Name)
                    and first.func.id == "iter"
                    and first.args
                    and scope.iterates_set(first.args[0])
                ):
                    yield finding(node, "arbitrary selection `next(iter())`", first.args[0])
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if first is not None and scope.iterates_set(first):
                yield finding(node, "`str.join()`", first)

    @staticmethod
    def _body_order_sensitive(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_BODY
                ):
                    return True
        return False
