"""Ordered-iteration fixture: blessed patterns only — zero findings."""

from typing import Set


def sorted_list(items: Set[int]):
    return sorted(items)


def sorted_with_total_key(items: Set[int]):
    return sorted(items, key=lambda item: (-item, item))


def membership(items: Set[int], probe: int):
    return probe in items


def untied_min(items: Set[int]):
    return min(items)


def set_algebra(a: Set[int], b: Set[int]):
    return (a | b) - (a & b)


def sized(items: Set[int]):
    return len(items)


def ordinary_dict_is_trusted(pairs):
    mapping = dict(pairs)
    return list(mapping.values())
