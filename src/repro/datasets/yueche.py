"""Yueche-like workload (Table II: 624 workers, 11,052 tasks, 9:00-11:00).

The original Yueche trace is a morning ride-hailing snapshot in Chengdu.
The generator reproduces its scale and structure: an ~10 km x 10 km urban
region, a late-morning demand profile that peaks towards the end of the
window (approaching lunch time), and cross-region flows from campuses and
business areas towards restaurant districts.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.synthetic import (
    CityModel,
    SyntheticWorkload,
    SyntheticWorkloadGenerator,
    WorkloadConfig,
    default_city,
)


def yueche_config(
    num_workers: int = 624,
    num_tasks: int = 11052,
    scale: float = 1.0,
    seed: int = 11,
) -> WorkloadConfig:
    """Configuration matching the Yueche dataset of Table II.

    ``scale`` proportionally shrinks workers and tasks so unit tests and
    quick benchmarks can run a miniature version with the same structure.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return WorkloadConfig(
        name="yueche",
        num_workers=max(1, int(round(num_workers * scale))),
        num_tasks=max(1, int(round(num_tasks * scale))),
        horizon=7200.0,            # 9:00 - 11:00
        history_horizon=3600.0,    # 8:00 - 9:00 used as training history
        task_valid_time=40.0,
        worker_available_time=3600.0,
        reachable_distance=1.0,
        worker_speed=0.012,
        seed=seed,
    )


def yueche_city(seed: int = 11) -> CityModel:
    """City model with a morning-oriented demand profile."""
    city = default_city(seed=seed)
    return city


def generate_yueche(
    num_workers: int = 624,
    num_tasks: int = 11052,
    scale: float = 1.0,
    seed: int = 11,
    config: Optional[WorkloadConfig] = None,
) -> SyntheticWorkload:
    """Generate a Yueche-like workload (optionally scaled down)."""
    config = config or yueche_config(num_workers=num_workers, num_tasks=num_tasks, scale=scale, seed=seed)
    generator = SyntheticWorkloadGenerator(city=yueche_city(seed=seed), config=config)
    return generator.generate()
