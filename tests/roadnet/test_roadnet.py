"""Road-network subsystem unit tests: graphs, Dijkstra rows, the model."""

import math
import random

import numpy as np
import pytest

from repro.roadnet import (
    RoadNetwork,
    RoadNetworkTravelModel,
    dijkstra_row,
    grid_network,
    load_edge_list,
    many_to_many,
    radial_network,
    save_edge_list,
)
from repro.spatial.geometry import Point, euclidean_distance


def _as_nx(network):
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(network.num_nodes))
    for u in range(network.num_nodes):
        nbrs, lengths, times = network.out_edges(u)
        for v, length, time in zip(nbrs.tolist(), lengths.tolist(), times.tolist()):
            graph.add_edge(u, v, time=time, length=length)
    return graph


class TestGraph:
    def test_grid_shape_and_dilation(self):
        net = grid_network(5, 7, spacing=0.5)
        assert net.num_nodes == 35
        # 4 horizontal + ... each undirected pair contributes 2 directed edges.
        undirected = 5 * 6 + 7 * 4
        assert net.num_edges == 2 * undirected
        assert net.min_dilation == pytest.approx(1.0)
        assert net.node_point(0) == Point(0.0, 0.0)

    def test_radial_shape(self):
        net = radial_network(rings=3, spokes=6, ring_spacing=1.0)
        assert net.num_nodes == 1 + 3 * 6
        assert net.min_dilation >= 1.0 - 1e-12
        # CSR is internally consistent.
        assert net.indptr[0] == 0
        assert net.indptr[-1] == net.num_edges
        assert (np.diff(net.indptr) >= 0).all()

    def test_speed_jitter_makes_times_asymmetric(self):
        net = grid_network(4, 4, seed=11, speed_jitter=0.4)
        asym = 0
        for u in range(net.num_nodes):
            nbrs, _, times = net.out_edges(u)
            for v, t_uv in zip(nbrs.tolist(), times.tolist()):
                back_nbrs, _, back_times = net.out_edges(v)
                for w, t_vu in zip(back_nbrs.tolist(), back_times.tolist()):
                    if w == u and t_uv != t_vu:
                        asym += 1
        assert asym > 0

    def test_one_way_fraction_drops_reverse_edges(self):
        full = grid_network(5, 5, seed=3)
        one_way = grid_network(5, 5, seed=3, one_way_fraction=0.5)
        assert one_way.num_edges < full.num_edges

    def test_jitter_and_one_way_apply_without_seed(self):
        # Regression: seed=None used to silently disable both knobs.
        full = grid_network(5, 5)
        net = grid_network(5, 5, speed_jitter=0.4, one_way_fraction=0.5)
        assert net.num_edges < full.num_edges
        assert len(set(net.edge_time.tolist())) > 1

    def test_from_edges_validation(self):
        with pytest.raises(ValueError):
            RoadNetwork.from_edges([(0.0, 0.0)], [(0, 5, 1.0, 1.0)])
        with pytest.raises(ValueError):
            RoadNetwork.from_edges([(0.0, 0.0), (1.0, 0.0)], [(0, 1, -1.0, 1.0)])

    def test_edge_list_round_trip(self, tmp_path):
        net = grid_network(4, 3, spacing=0.7, seed=5, speed_jitter=0.3)
        path = tmp_path / "net.txt"
        save_edge_list(net, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == net.num_nodes
        assert loaded.num_edges == net.num_edges
        assert np.array_equal(loaded.node_x, net.node_x)
        assert np.array_equal(loaded.node_y, net.node_y)
        assert np.array_equal(loaded.indptr, net.indptr)
        assert np.array_equal(loaded.indices, net.indices)
        assert np.array_equal(loaded.edge_length, net.edge_length)
        assert np.array_equal(loaded.edge_time, net.edge_time)

    def test_edge_list_default_time_and_errors(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text(
            "# tiny\nnode 10 0.0 0.0\nnode 20 3.0 4.0\nedge 10 20 5.0\n"
        )
        net = load_edge_list(path, default_speed=2.0)
        assert net.num_nodes == 2
        assert net.edge_time[0] == pytest.approx(2.5)
        bad = tmp_path / "bad.txt"
        bad.write_text("street 1 2\n")
        with pytest.raises(ValueError):
            load_edge_list(bad)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        import networkx as nx

        net = grid_network(6, 5, seed=seed, speed_jitter=0.35, one_way_fraction=0.15)
        graph = _as_nx(net)
        for source in (0, net.num_nodes // 2, net.num_nodes - 1):
            times, lengths = dijkstra_row(net, source)
            reference = nx.single_source_dijkstra_path_length(graph, source, weight="time")
            for v in range(net.num_nodes):
                if v in reference:
                    assert times[v] == pytest.approx(reference[v], abs=1e-12)
                    assert math.isfinite(lengths[v])
                else:
                    assert math.isinf(times[v]) and math.isinf(lengths[v])

    def test_deterministic_rows(self):
        net = grid_network(6, 6, seed=2, speed_jitter=0.3)
        a_t, a_l = dijkstra_row(net, 7)
        b_t, b_l = dijkstra_row(net, 7)
        assert np.array_equal(a_t, b_t)
        assert np.array_equal(a_l, b_l)

    def test_length_follows_fastest_path(self):
        # Two routes 0 -> 2: direct (length 1, slow) and via 1 (length 4,
        # fast).  Time must pick the detour and length must report the
        # detour's length, not the shortest length.
        nodes = [(0.0, 0.0), (1.0, 1.0), (1.0, 0.0)]
        edges = [
            (0, 2, 1.0, 10.0),
            (0, 1, 2.0, 1.0),
            (1, 2, 2.0, 1.0),
        ]
        net = RoadNetwork.from_edges(nodes, edges)
        times, lengths = dijkstra_row(net, 0)
        assert times[2] == pytest.approx(2.0)
        assert lengths[2] == pytest.approx(4.0)

    def test_many_to_many_shapes_and_duplicates(self):
        net = grid_network(4, 4, seed=1)
        times, lengths = many_to_many(net, [0, 3, 0], [1, 2])
        assert times.shape == lengths.shape == (3, 2)
        assert np.array_equal(times[0], times[2])

    def test_invalid_source(self):
        net = grid_network(2, 2)
        with pytest.raises(ValueError):
            dijkstra_row(net, 99)


class TestRoadNetworkTravelModel:
    @pytest.fixture
    def model(self):
        net = grid_network(7, 7, spacing=1.0, speed=1.5, seed=9, speed_jitter=0.3)
        return RoadNetworkTravelModel(net, speed=1.5)

    def test_scalar_matrix_bit_identical(self, model):
        rng = np.random.default_rng(4)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (9, 2))]
        dist, time = model.pairwise(points, points)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert dist[i, j] == model.distance(a, b)
                assert time[i, j] == model.time(a, b)

    def test_single_row_and_legs_match_pairwise(self, model):
        rng = np.random.default_rng(8)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (6, 2))]
        dist, time = model.pairwise(points[:1], points)
        row_d, row_t = model.single_row(points[0], points)
        assert np.array_equal(row_d, dist[0])
        assert np.array_equal(row_t, time[0])
        legs_d, legs_t = model.legs(points, points)
        full_d, full_t = model.pairwise(points, points)
        assert np.array_equal(legs_d, full_d)
        assert np.array_equal(legs_t, full_t)

    def test_times_are_asymmetric_somewhere(self, model):
        rng = np.random.default_rng(12)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (12, 2))]
        assert any(
            model.time(a, b) != model.time(b, a)
            for a in points
            for b in points
            if a != b
        )

    def test_snap_nearest_and_deterministic(self, model):
        rng = np.random.default_rng(3)
        nodes = [model.network.node_point(i) for i in range(model.network.num_nodes)]
        for x, y in rng.uniform(-1, 7, (20, 2)):
            point = Point(float(x), float(y))
            node, access = model.snap(point)
            best = min(euclidean_distance(n, point) for n in nodes)
            assert access == pytest.approx(best)
            assert euclidean_distance(nodes[node], point) == access
            assert model.snap(point) == (node, access)  # cache hit identical

    def test_snap_equidistant_breaks_ties_by_node_id(self):
        net = grid_network(2, 2, spacing=2.0)
        model = RoadNetworkTravelModel(net)
        # Centre of the cell: all four nodes equidistant -> smallest id.
        node, _ = model.snap(Point(1.0, 1.0))
        assert node == 0

    def test_distance_dominates_euclidean(self, model):
        # min_dilation == 1 networks: network distance >= straight line,
        # the property behind the identity reach_bound.
        rng = np.random.default_rng(21)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (10, 2))]
        for a in points:
            for b in points:
                assert model.distance(a, b) >= euclidean_distance(a, b) - 1e-9
        assert model.reach_bound(3.7) == 3.7

    def test_reach_bound_scales_for_shortcut_networks(self):
        # An edge shorter than its straight-line segment (dilation < 1)
        # must widen the Euclidean bound accordingly.
        nodes = [(0.0, 0.0), (4.0, 0.0)]
        edges = [(0, 1, 2.0, 2.0), (1, 0, 2.0, 2.0)]
        net = RoadNetwork.from_edges(nodes, edges)
        model = RoadNetworkTravelModel(net)
        assert net.min_dilation == pytest.approx(0.5)
        assert model.reach_bound(1.0) == pytest.approx(2.0)

    def test_row_cache_hits(self, model):
        model.clear_caches()
        a, b = Point(0.2, 0.3), Point(5.1, 4.2)
        model.time(a, b)
        misses = model.row_cache_misses
        model.time(a, b)
        model.distance(a, b)
        assert model.row_cache_misses == misses
        assert model.row_cache_hits >= 2

    def test_unreachable_pairs_are_infinite(self):
        nodes = [(0.0, 0.0), (10.0, 0.0)]
        net = RoadNetwork.from_edges(nodes, [(0, 1, 10.0, 5.0)])
        model = RoadNetworkTravelModel(net)
        forward = model.time(Point(0.1, 0.0), Point(9.9, 0.0))
        backward = model.time(Point(9.9, 0.0), Point(0.1, 0.0))
        assert math.isfinite(forward)
        assert math.isinf(backward)

    def test_empty_network_rejected(self):
        net = RoadNetwork.from_edges([], [])
        with pytest.raises(ValueError):
            RoadNetworkTravelModel(net)

    def test_zero_length_edge_degrades_reach_bound_to_inf(self):
        # Regression: a zero-length edge between distinct nodes (dilation
        # 0) used to raise ZeroDivisionError at construction; no finite
        # Euclidean bound exists, so the model must degrade to inf.
        nodes = [(0.0, 0.0), (5.0, 0.0)]
        edges = [(0, 1, 0.0, 0.1), (1, 0, 0.0, 0.1)]
        net = RoadNetwork.from_edges(nodes, edges)
        assert net.min_dilation == 0.0
        model = RoadNetworkTravelModel(net)
        assert math.isinf(model.reach_bound(1.0))
        # Planning through an inf bound stays functional (full scans).
        assert model.time(Point(0.0, 0.0), Point(5.0, 0.0)) == pytest.approx(0.1)
