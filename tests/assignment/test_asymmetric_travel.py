"""Asymmetric / non-metric travel times through the planning stack.

The Euclidean suite never exercises ``c(a, b) != c(b, a)`` or triangle
violations, yet nothing in reachability, sequence enumeration, horizon
caching or the incremental engine's dirty balls is *supposed* to depend on
those properties — only on travel costs being static per ordered pair.
These tests pin that down with the suite's two shared adversarial models
(``tests/spatial/conformance.py``):

* :class:`AsymmetricTimeModel` — Euclidean distances but direction- and
  pair-dependent times with explicit triangle-inequality violations (the
  default ``reach_bound`` stays valid because distances still dominate the
  straight line);
* :class:`ShortcutModel` — travel distances *below* the Euclidean
  distance, whose overridden ``reach_bound`` (infinite) must keep the
  dirty-ball machinery sound by degrading it to full recomputation.

Protocol-level identity checks (scalar vs matrix, TravelMatrix) live in
the shared conformance suite; this file keeps the *planning-stack*
behaviours: reachability/sequence path equivalence, horizons and the
incremental engine's dirty-ball soundness.
"""

import math
import random

import pytest

from conformance import (
    AsymmetricTimeModel,
    ShortcutModel,
    check_travel_matrix_identity,
)
from repro.assignment.planner import PlannerConfig, TaskPlanner
from repro.assignment.reachability import (
    reachable_tasks,
    reachable_tasks_with_horizon,
)
from repro.assignment.sequences import maximal_valid_sequences
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.geometry import Point
from repro.spatial.index import SpatialIndex
from repro.spatial.travel_matrix import TravelMatrix


def random_instance(rng, max_workers=8, max_tasks=30):
    workers = [
        Worker(
            i,
            Point(rng.uniform(0, 10), rng.uniform(0, 10)),
            rng.uniform(0.5, 3.0),
            0.0,
            rng.uniform(5, 50),
        )
        for i in range(rng.randint(1, max_workers))
    ]
    tasks = [
        Task(100 + j, Point(rng.uniform(0, 10), rng.uniform(0, 10)), 0.0, rng.uniform(1, 40))
        for j in range(rng.randint(1, max_tasks))
    ]
    return workers, tasks


class TestModelProperties:
    def test_times_are_asymmetric_and_non_metric(self):
        model = AsymmetricTimeModel(speed=1.0)
        rng = random.Random(0)
        points = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)]
        assert any(
            model.time(a, b) != model.time(b, a) for a in points for b in points if a != b
        )
        violations = sum(
            1
            for a in points
            for b in points
            for c in points
            if a != b and b != c and a != c
            and model.time(a, c) > model.time(a, b) + model.time(b, c) + 1e-12
        )
        assert violations > 0  # the triangle inequality genuinely fails


class TestScalarMatrixEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matrix_fallback_is_bit_identical(self, seed):
        """A model without a vectorized kernel must plan through the cached
        scalar fallback with identical floats everywhere."""
        model = AsymmetricTimeModel(speed=1.3)
        rng = random.Random(300 + seed)
        workers, tasks = random_instance(rng)
        check_travel_matrix_identity(model, workers, tasks)
        matrix = TravelMatrix(workers, tasks, model)
        now = rng.uniform(0.0, 2.0)
        for worker in workers:
            scalar = reachable_tasks(worker, tasks, now, model, max_tasks=8)
            from repro.assignment.reachability import reachable_tasks_matrix

            vector = reachable_tasks_matrix(worker, tasks, now, matrix, max_tasks=8)
            assert [t.task_id for t in scalar] == [t.task_id for t in vector]

    @pytest.mark.parametrize("seed", range(6))
    def test_sequences_match_under_asymmetry(self, seed, monkeypatch):
        import repro.assignment.sequences as seq_mod

        monkeypatch.setattr(seq_mod, "_MATRIX_MIN_TASKS", 0)
        model = AsymmetricTimeModel(speed=1.0)
        rng = random.Random(400 + seed)
        workers, tasks = random_instance(rng)
        now = rng.uniform(0.0, 2.0)
        matrix = TravelMatrix(workers, tasks, model)
        for worker in workers:
            reachable = reachable_tasks(worker, tasks, now, model, max_tasks=8)
            scalar = maximal_valid_sequences(
                worker, reachable, now, model, max_length=3, max_sequences=16
            )
            vector = maximal_valid_sequences(
                worker, reachable, now, model,
                max_length=3, max_sequences=16, matrix=matrix,
            )
            assert [s.task_ids for s in scalar] == [s.task_ids for s in vector]


class TestHorizonsUnderAsymmetry:
    """Validity horizons only assume static per-pair costs — triangle
    violations must not produce a horizon inside which the output moves."""

    @pytest.mark.parametrize("seed", range(10))
    def test_reachability_constant_inside_horizon(self, seed):
        model = AsymmetricTimeModel(speed=1.0)
        rng = random.Random(500 + seed)
        workers, tasks = random_instance(rng)
        now = rng.uniform(0.0, 2.0)
        for worker in workers:
            capped, _, horizon = reachable_tasks_with_horizon(
                worker, tasks, now, model, max_tasks=8
            )
            if not math.isfinite(horizon) or horizon <= now:
                continue
            for fraction in (0.3, 0.9, 0.999):
                probe = now + (horizon - now) * fraction
                reference = reachable_tasks(worker, tasks, probe, model, max_tasks=8)
                assert [t.task_id for t in reference] == [t.task_id for t in capped]

    @pytest.mark.parametrize("seed", range(10))
    def test_sequences_constant_inside_horizon(self, seed):
        model = AsymmetricTimeModel(speed=1.0)
        rng = random.Random(600 + seed)
        workers, tasks = random_instance(rng)
        now = rng.uniform(0.0, 2.0)
        for worker in workers:
            reachable = reachable_tasks(worker, tasks, now, model, max_tasks=8)
            box = []
            sequences = maximal_valid_sequences(
                worker, reachable, now, model,
                max_length=3, max_sequences=16, horizon_out=box,
            )
            horizon = box[0]
            if not math.isfinite(horizon) or horizon <= now:
                continue
            signature = [s.task_ids for s in sequences]
            for fraction in (0.4, 0.95):
                probe = now + (horizon - now) * fraction
                again = maximal_valid_sequences(
                    worker, reachable, probe, model, max_length=3, max_sequences=16
                )
                assert [s.task_ids for s in again] == signature


def _outcome_signature(outcome):
    return (
        [(wp.worker.worker_id, wp.sequence.task_ids) for wp in outcome.assignment],
        outcome.planned_tasks,
        outcome.nodes_expanded,
        outcome.num_components,
    )


class TestIncrementalSoundness:
    """Dirty-ball soundness: incremental == full on evolving streams for
    both adversarial models (with and without a usable reach bound)."""

    @pytest.mark.parametrize(
        "model_factory", [AsymmetricTimeModel, ShortcutModel], ids=["asym", "shortcut"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_stream_matches_full_replan(self, seed, model_factory):
        model = model_factory(speed=1.0)
        rng = random.Random(700 + seed)
        workers = {
            i: Worker(
                i,
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                rng.uniform(0.5, 3.0),
                0.0,
                rng.uniform(5, 50),
            )
            for i in range(rng.randint(2, 8))
        }
        tasks = {
            100 + j: Task(
                100 + j,
                Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                0.0,
                rng.uniform(1, 40),
            )
            for j in range(rng.randint(5, 25))
        }
        index = SpatialIndex(cell_size=1.0)
        for tid, task in tasks.items():
            index.insert(tid, task.location)
        incremental = TaskPlanner(
            PlannerConfig(incremental_replan=True, travel_model=model)
        )
        full = TaskPlanner(PlannerConfig(incremental_replan=False, travel_model=model))
        incremental.attach_task_index(index)
        full.attach_task_index(index)
        now = 0.0
        next_tid = 1000
        for _ in range(15):
            snapshot_workers = [w for _, w in sorted(workers.items())]
            snapshot_tasks = [t for _, t in sorted(tasks.items())]
            a = incremental.plan(snapshot_workers, snapshot_tasks, now)
            b = full.plan(snapshot_workers, snapshot_tasks, now)
            assert _outcome_signature(a) == _outcome_signature(b)
            event = rng.random()
            if event < 0.3 and tasks:
                tid = rng.choice(sorted(tasks))
                del tasks[tid]
                index.discard(tid)
            elif event < 0.6:
                task = Task(
                    next_tid,
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    now,
                    now + rng.uniform(1, 40),
                )
                tasks[next_tid] = task
                index.insert(next_tid, task.location)
                next_tid += 1
            elif workers:
                wid = rng.choice(sorted(workers))
                workers[wid] = workers[wid].moved_to(
                    Point(rng.uniform(0, 10), rng.uniform(0, 10))
                )
            now += rng.uniform(0.0, 1.5)

    def test_infinite_reach_bound_scans_everything(self):
        """The inf bound turns the index prefilter into a full scan rather
        than crashing or silently dropping candidates."""
        model = ShortcutModel(speed=1.0)
        index = SpatialIndex(cell_size=1.0)
        tasks = {
            j: Task(j, Point(float(j * 50), 0.0), 0.0, 100.0) for j in range(5)
        }
        for tid, task in tasks.items():
            index.insert(tid, task.location)
        assert sorted(index.query_radius(Point(0.0, 0.0), float("inf"))) == list(range(5))
        worker = Worker(1, Point(0.0, 0.0), 30.0, 0.0, 100.0)
        from repro.assignment.reachability import reachable_tasks_indexed

        indexed = reachable_tasks_indexed(
            worker, index, tasks, 0.0, model
        )
        reference = reachable_tasks(worker, list(tasks.values()), 0.0, model)
        assert [t.task_id for t in indexed] == [t.task_id for t in reference]
        # The shortcut metric reaches tasks the Euclidean ball would miss.
        assert len(reference) > 1
