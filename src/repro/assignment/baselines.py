"""Baseline assignment procedures: Greedy and Fixed Task Assignment helpers.

* :func:`greedy_assignment` — the Greedy evaluation method: each worker, in
  turn, takes the maximal valid task set it can greedily build from the
  still-unassigned tasks (nearest-feasible-next), until tasks or workers
  are exhausted.  No dependency separation, no search.
* :func:`fixed_task_assignment` — a one-shot planner used by the FTA
  strategy: it runs the full worker-dependency-separation + DFSearch
  pipeline once and the resulting sequences are then frozen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.assignment.dependency_graph import build_worker_dependency_graph
from repro.assignment.dfsearch import dfsearch
from repro.assignment.reachability import reachable_tasks
from repro.assignment.sequences import maximal_valid_sequences
from repro.assignment.tree import build_partition_tree
from repro.core.assignment import Assignment, WorkerPlan
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.travel import EuclideanTravelModel, TravelModel


def greedy_assignment(
    workers: Sequence[Worker],
    tasks: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_sequence_length: int = 3,
) -> Assignment:
    """Greedy baseline: maximal valid task set per worker, first come first served."""
    travel = travel or EuclideanTravelModel(speed=1.0)
    unassigned: List[Task] = [task for task in tasks if not task.is_expired(now)]
    assignment = Assignment()
    for worker in workers:
        if not unassigned:
            break
        sequence: List[Task] = []
        location = worker.location
        time = now
        while len(sequence) < max_sequence_length:
            best = None
            best_arrival = None
            for task in unassigned:
                if travel.distance(location, task.location) > worker.reachable_distance + 1e-9:
                    continue
                arrival = time + travel.time(location, task.location)
                if arrival >= task.expiration_time or arrival >= worker.off_time:
                    continue
                if best_arrival is None or arrival < best_arrival:
                    best = task
                    best_arrival = arrival
            if best is None:
                break
            sequence.append(best)
            unassigned.remove(best)
            location = best.location
            time = best_arrival
        if sequence:
            assignment.add(WorkerPlan(worker, TaskSequence(worker, tuple(sequence))))
    return assignment


def fixed_task_assignment(
    workers: Sequence[Worker],
    tasks: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_reachable: int = 10,
    max_sequence_length: int = 3,
    max_sequences: int = 32,
    node_budget: int = 20000,
) -> Assignment:
    """One-shot exact plan: dependency separation + DFSearch (no TVF, no replanning)."""
    travel = travel or EuclideanTravelModel(speed=1.0)
    active_tasks = [task for task in tasks if not task.is_expired(now)]
    workers_by_id = {worker.worker_id: worker for worker in workers}

    reachable_by_worker = {
        worker.worker_id: reachable_tasks(worker, active_tasks, now, travel, max_tasks=max_reachable)
        for worker in workers
    }
    sequences_by_worker: Dict[int, List[TaskSequence]] = {
        worker.worker_id: maximal_valid_sequences(
            worker,
            reachable_by_worker[worker.worker_id],
            now,
            travel,
            max_length=max_sequence_length,
            max_sequences=max_sequences,
        )
        for worker in workers
    }

    graph = build_worker_dependency_graph(reachable_by_worker)
    tree = build_partition_tree(graph)
    tasks_by_id = {task.task_id: task for task in active_tasks}

    assignment = Assignment()
    for root in tree.roots:
        result = dfsearch(
            root,
            active_tasks,
            sequences_by_worker,
            workers_by_id,
            node_budget=node_budget,
        )
        for worker_id, task_ids in result.selections:
            if not task_ids:
                continue
            worker = workers_by_id[worker_id]
            sequence_tasks = tuple(tasks_by_id[tid] for tid in task_ids)
            assignment.add(WorkerPlan(worker, TaskSequence(worker, sequence_tasks)))
    return assignment
