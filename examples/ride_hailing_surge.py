"""Ride-hailing surge scenario: demand prediction feeding adaptive assignment.

This example mirrors the paper's motivating scenario — a surge of ride
requests around a university when classes end, followed (with a lag) by a
second surge in the restaurant district.  It:

1. generates a Yueche-like morning workload with cross-region demand flows,
2. trains the DDGNN demand predictor on the preceding hour of history,
3. materialises predicted tasks above the 0.85 threshold, and
4. compares DTA (no prediction), DTA+TP and DATA-WA on assigned tasks and
   planning CPU time.

Run with::

    python examples/ride_hailing_surge.py [--scale 0.03]
"""

from __future__ import annotations

import argparse

from repro.assignment import PlannerConfig
from repro.datasets import generate_yueche
from repro.demand import DDGNN, DemandPredictor, DemandTrainer
from repro.demand.timeseries import build_time_series, sliding_windows
from repro.experiments.reporting import format_table
from repro.simulation import PlatformConfig, SimulationRunner
from repro.spatial import GridSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="fraction of the full Yueche workload to generate")
    parser.add_argument("--epochs", type=int, default=4, help="DDGNN training epochs")
    parser.add_argument("--delta-t", type=float, default=30.0, help="time interval (s)")
    args = parser.parse_args()

    print(f"Generating Yueche-like workload at scale {args.scale} ...")
    workload = generate_yueche(scale=args.scale, seed=11)
    instance = workload.instance
    print(f"  {instance.num_workers} workers, {instance.num_tasks} tasks, "
          f"{len(workload.historical_tasks)} historical tasks")

    # ---------------------------------------------------------------- #
    # 1. Demand prediction: task multivariate time series -> DDGNN.
    # ---------------------------------------------------------------- #
    grid = GridSpec(workload.city.bounds, rows=5, cols=5)
    horizon_end = workload.config.history_horizon + workload.config.horizon
    series = build_time_series(
        workload.historical_tasks + instance.tasks, grid,
        start_time=0.0, end_time=horizon_end, delta_t=args.delta_t, k=3,
    )
    history = 4
    inputs, targets = sliding_windows(series, history=history)
    print(f"Training DDGNN on {inputs.shape[0]} windows "
          f"({grid.num_cells} cells, k=3, history={history}) ...")
    model = DDGNN(num_cells=grid.num_cells, k=3, history=history, hidden=12, seed=0)
    trainer = DemandTrainer(model, epochs=args.epochs, seed=0)
    result = trainer.fit(inputs, targets)
    print(f"  final BCE loss {result.final_loss:.4f} after {result.epochs_run} epochs "
          f"({result.training_time:.1f}s)")

    # ---------------------------------------------------------------- #
    # 2. Materialise predicted tasks for the evaluation window.
    # ---------------------------------------------------------------- #
    predictor = DemandPredictor(model, grid, delta_t=args.delta_t, threshold=0.85,
                                task_valid_duration=workload.config.task_valid_time,
                                historical_tasks=workload.historical_tasks)
    predicted = []
    next_id = 5_000_000
    eval_start_window = int(workload.config.history_horizon // series.window_length)
    for window in range(max(eval_start_window, history), series.num_windows):
        tasks = predictor.predict_tasks(series.values[window - history:window],
                                        series.window_start(window), next_id)
        next_id += len(tasks) + 1
        predicted.extend(tasks)
    print(f"Predicted {len(predicted)} future tasks above the 0.85 threshold")

    # ---------------------------------------------------------------- #
    # 3. Compare prediction-aware strategies against plain DTA.
    # ---------------------------------------------------------------- #
    runner = SimulationRunner(
        instance,
        platform_config=PlatformConfig(replan_interval=30.0),
        planner_config=PlannerConfig(max_reachable=6, max_sequence_length=2, node_budget=4000),
        predicted_tasks=predicted,
    )
    rows = []
    for method in ["DTA", "DTA+TP", "DATA-WA"]:
        report = runner.run_strategy(method)
        rows.append({
            "method": method,
            "assigned tasks": report.assigned_tasks,
            "mean CPU time (s)": round(report.mean_cpu_time, 4),
        })
    print()
    print(format_table(rows, ["method", "assigned tasks", "mean CPU time (s)"],
                       title="Surge scenario: prediction-aware assignment"))


if __name__ == "__main__":
    main()
