"""Pluggable dispatch stage of the decompose→dispatch→merge plan pipeline.

The TPA planner (Alg. 4) and the incremental replan engine both end in the
same shape of work: after partitioning, each connected component is an
independent sub-problem whose search result depends only on the component's
tree, its workers' candidate sequences and the available task ids — never
on ``now`` or on other components.  This module turns that observation into
an explicit architecture:

* **decompose** — the planner extracts each component into a self-contained
  :class:`ComponentJob`: a picklable value object carrying everything
  :func:`run_component_job` needs to reproduce the exact in-process search
  call (engine mode, subtree, candidate sequences, available ids, budget).
* **dispatch** — a :class:`SearchExecutor` runs the jobs.
  :class:`SerialExecutor` executes them inline (the reference behaviour,
  zero overhead); :class:`ParallelExecutor` fans them out over a warm
  ``ProcessPoolExecutor`` shared across epochs and planner instances, and
  falls back to serial execution transparently if the pool dies.
* **merge** — the planner reassembles results **in submission order**, so
  assignments, metrics and TVF experience are bit-for-bit identical
  regardless of backend or worker count (pool scheduling can reorder
  completion, never the merge).

Determinism contract: ``run_component_job`` is a pure function of its job
(given a fixed wall-clock deadline state), both executors preserve
submission order, and cross-component coupling (the greedy deadline fill,
incremental cache writes) stays in the parent at merge time.  The only
wall-clock-dependent behaviour is the deadline ladder, which degrades each
job independently: a deadline expiring mid-dispatch skips only the jobs
that have not started yet.

The deadline is an absolute ``time.perf_counter()`` instant.  On Linux
``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared across processes,
so forked pool workers can honour the parent's deadline directly; the
parent additionally pre-checks expiry at submission time so fully expired
epochs never touch the pool at all.
"""

from __future__ import annotations

import logging
import os
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.assignment.dfsearch import dfsearch, dfsearch_bnb
from repro.assignment.dfsearch_tvf import dfsearch_tvf
from repro.assignment.tree import PartitionNode
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker
from repro.obs.runtime import OBS_DISABLED
from repro.obs.trace import span_event

_LOG = logging.getLogger("repro.assignment.executor")

#: Components whose total candidate-sequence count is below this run inline
#: in the parent even under the parallel backend: the search finishes in
#: microseconds, far below the pickle + IPC cost of a pool round-trip.
#: Results are identical either way (the job function is pure), so this is
#: purely a latency knob.
INLINE_MIN_SEQUENCES = 24

#: Environment overrides consulted by :meth:`PlannerConfig.__post_init__`
#: (see planner.py) — used by CI to rerun entire suites under the parallel
#: backend without touching call sites.
EXECUTOR_ENV = "REPRO_EXECUTOR"
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_max_workers() -> int:
    """Worker-count default: the CPUs this process may actually use."""
    env = os.environ.get(MAX_WORKERS_ENV)
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ComponentJob:
    """One component's search, extracted into a picklable value object.

    ``mode`` selects the engine: ``"exact"`` (plain DFSearch), ``"bnb"``
    (branch-and-bound) or ``"tvf"`` (guided search).  Exact/B&B jobs carry
    only task *ids* — the searches never read task attributes — while TVF
    jobs carry the active task list, whose attributes feed the value
    function's state features.
    """

    index: int
    mode: str
    root: PartitionNode
    worker_ids: Tuple[int, ...]
    sequences_by_worker: Dict[int, List[TaskSequence]]
    workers_by_id: Dict[int, Worker]
    task_ids: FrozenSet[int]
    node_budget: int = 0
    collect_experience: bool = False
    #: Admissible bound kind for B&B jobs (see
    #: :data:`repro.assignment.dfsearch.BOUND_MODES`); exact/TVF jobs
    #: ignore it.  Part of the job payload so pool workers prune exactly
    #: like the serial path would.
    bound_mode: str = "adaptive"
    #: Active tasks (TVF mode only: global snapshot statistics).
    tasks: Optional[Sequence[Task]] = None
    #: The trained value function (TVF mode only; numpy state, picklable).
    tvf: Optional[object] = None
    #: Total candidate sequences across the component's workers — the
    #: dispatch-cost hint behind :data:`INLINE_MIN_SEQUENCES`.
    num_sequences: int = 0
    #: Span id of the dispatch span that submitted this job (observability
    #: only; ``None`` keeps the worker-side tracing entirely off).  The
    #: worker stamps its search span with this id so pool-side time lands
    #: under the right parent in the merged trace.
    trace_ctx: Optional[int] = None

    def restricted(self) -> "ComponentJob":
        """Copy with the shared lookup dicts narrowed to this component.

        The planner builds jobs against the full per-epoch dictionaries so
        the serial path adds zero copying; before a job crosses a process
        boundary the dictionaries are cut down to the component's workers,
        which is what keeps pickles small on dense snapshots.
        """
        return replace(
            self,
            sequences_by_worker={
                wid: self.sequences_by_worker.get(wid, []) for wid in self.worker_ids
            },
            workers_by_id={wid: self.workers_by_id[wid] for wid in self.worker_ids},
        )


@dataclass
class ComponentResult:
    """What one component's search produced (or why it did not run)."""

    index: int
    selections: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    nodes_expanded: int = 0
    deadline_hit: bool = False
    #: The deadline had already expired when the job would have started:
    #: no search ran and the merge stage must apply the greedy fill (a
    #: cross-component sequential step that cannot run in a pool worker).
    skipped: bool = False
    experience: List = field(default_factory=list)
    #: In-job wall-clock seconds (measured where the job ran).
    search_s: float = 0.0
    #: Absolute ``perf_counter`` instant the job started executing — on
    #: Linux the clock is shared across forked workers, so the parent can
    #: subtract its submit instant to get the pool queue wait.
    start_s: float = 0.0
    #: Trace events emitted where the job ran (only when the job carried a
    #: ``trace_ctx``); the parent adopts them into its tracer at merge.
    spans: Tuple[Dict[str, object], ...] = ()


def run_component_job(
    job: ComponentJob, deadline: Optional[float] = None
) -> ComponentResult:
    """Execute one component search; the pool entry point.

    Pure in ``job`` apart from the deadline ladder: an expired deadline at
    start yields a ``skipped`` marker, a mid-search expiry yields the
    engine's anytime partial with ``deadline_hit`` set.
    """
    start = _time.perf_counter()
    if deadline is not None and start >= deadline:
        return ComponentResult(index=job.index, skipped=True, start_s=start)
    if job.mode == "tvf":
        result = dfsearch_tvf(
            job.root, job.tasks, job.sequences_by_worker, job.workers_by_id, job.tvf
        )
    elif job.mode == "exact":
        result = dfsearch(
            job.root,
            None,
            job.sequences_by_worker,
            job.workers_by_id,
            node_budget=job.node_budget,
            collect_experience=job.collect_experience,
            deadline=deadline,
            available_ids=job.task_ids,
        )
    else:
        result = dfsearch_bnb(
            job.root,
            None,
            job.sequences_by_worker,
            job.workers_by_id,
            node_budget=job.node_budget,
            collect_experience=job.collect_experience,
            deadline=deadline,
            available_ids=job.task_ids,
            bound_mode=job.bound_mode,
        )
    end = _time.perf_counter()
    spans: Tuple[Dict[str, object], ...] = ()
    if job.trace_ctx is not None:
        pid = os.getpid()
        spans = (
            span_event(
                "component.search",
                int(start * 1_000_000),
                int(end * 1_000_000),
                pid,
                pid,
                # Negative ids keep worker spans out of the parent
                # tracer's id space; folding in the dispatch span id keeps
                # them unique across epochs on the same worker track.
                -((job.trace_ctx << 12) + job.index + 1),
                job.trace_ctx,
                cat="worker",
                index=job.index,
                mode=job.mode,
                sequences=job.num_sequences,
                nodes=result.nodes_expanded,
            ),
        )
    return ComponentResult(
        index=job.index,
        selections=tuple(result.selections),
        nodes_expanded=result.nodes_expanded,
        deadline_hit=result.deadline_hit,
        experience=result.experience,
        search_s=end - start,
        start_s=start,
        spans=spans,
    )


@dataclass
class ExecutorStats:
    """Per-dispatch accounting surfaced as planner/platform metrics."""

    jobs: int = 0
    #: Jobs that actually crossed a process boundary this dispatch.
    parallel_jobs: int = 0
    #: Sum of in-job search seconds (where each job ran).
    search_s: float = 0.0
    #: Wall-clock of the whole dispatch stage.
    wall_s: float = 0.0
    #: ``wall_s`` minus the backend's ideal critical path — an *estimate*
    #: of pickling + IPC + scheduling cost (0 for a perfect dispatch).
    overhead_s: float = 0.0
    #: 1 when *this* dispatch fell back to serial after a pool failure,
    #: else 0 — per-dispatch like every other field here, so consumers
    #: that sum stats across epochs count each failure once.  The
    #: executor's lifetime total is ``ParallelExecutor._fallbacks``.
    fallbacks: int = 0


class SearchExecutor:
    """Protocol of the dispatch stage.

    ``run`` takes the decomposed jobs plus the epoch deadline and returns
    ``(results, stats)`` with ``results[i]`` answering ``jobs[i]`` —
    submission order, always.  ``close`` releases backend resources (a
    no-op for shared pools, which outlive individual planners by design).
    """

    kind: str = "serial"

    def run(
        self,
        jobs: Sequence[ComponentJob],
        deadline: Optional[float] = None,
        obs=OBS_DISABLED,
    ) -> Tuple[List[ComponentResult], ExecutorStats]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


def _run_inline_job(job: ComponentJob, deadline: Optional[float], obs) -> ComponentResult:
    """One in-parent job, wrapped in a search span when tracing is on."""
    if not obs.enabled:
        return run_component_job(job, deadline)
    with obs.span(
        "component.search", index=job.index, mode=job.mode, sequences=job.num_sequences
    ) as span:
        result = run_component_job(job, deadline)
        span.set(nodes=result.nodes_expanded, skipped=result.skipped)
    return result


class SerialExecutor(SearchExecutor):
    """Reference backend: run every job inline, in order."""

    kind = "serial"

    def run(self, jobs, deadline=None, obs=OBS_DISABLED):
        start = _time.perf_counter()
        results = [_run_inline_job(job, deadline, obs) for job in jobs]
        wall = _time.perf_counter() - start
        search = sum(result.search_s for result in results)
        return results, ExecutorStats(
            jobs=len(jobs),
            search_s=search,
            wall_s=wall,
            overhead_s=max(0.0, wall - search),
        )


# Warm pools shared process-wide, keyed by worker count: every planner with
# the same ``max_workers`` reuses the same forked workers across epochs,
# runs and strategy instances, so the fork cost is paid once per process.
_SHARED_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _shared_pool(max_workers: int) -> ProcessPoolExecutor:
    pool = _SHARED_POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _SHARED_POOLS[max_workers] = pool
    return pool


def _discard_pool(max_workers: int) -> None:
    pool = _SHARED_POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Tear down every shared pool (test isolation, interpreter exit)."""
    for max_workers in list(_SHARED_POOLS):
        _discard_pool(max_workers)


class ParallelExecutor(SearchExecutor):
    """Process-pool backend with submission-order merge and serial fallback.

    Jobs below :data:`INLINE_MIN_SEQUENCES` candidate sequences run inline
    (the pool round-trip would dominate); the rest are submitted to the
    shared pool and collected strictly in submission order.  Any pool
    failure — a broken pool, an unpicklable payload, a dying worker —
    degrades the dispatch to a full serial re-run: jobs are pure, so
    re-running ones that may already have completed remotely is safe.
    """

    kind = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or default_max_workers()
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        self._fallbacks = 0

    def run(self, jobs, deadline=None, obs=OBS_DISABLED):
        start = _time.perf_counter()
        if self.max_workers == 1 or len(jobs) <= 1:
            results, stats = SerialExecutor().run(jobs, deadline, obs=obs)
            return results, stats

        results: List[Optional[ComponentResult]] = [None] * len(jobs)
        pooled: List[Tuple[int, ComponentJob]] = []
        inline_s = 0.0
        for i, job in enumerate(jobs):
            if deadline is not None and _time.perf_counter() >= deadline:
                # Deadline expired mid-dispatch: only the jobs not yet
                # started degrade (to skipped → merge-time greedy fill);
                # everything already submitted runs to completion.
                results[i] = ComponentResult(index=job.index, skipped=True)
            elif job.num_sequences < INLINE_MIN_SEQUENCES:
                inline_result = _run_inline_job(job, deadline, obs)
                results[i] = inline_result
                inline_s += inline_result.search_s
            else:
                pooled.append((i, job))

        pooled_max = 0.0
        pooled_sum = 0.0
        if pooled:
            try:
                pool = _shared_pool(self.max_workers)
                trace_ctx = obs.current_span_id() if obs.enabled else None
                futures = []
                for i, job in pooled:
                    payload = job.restricted()
                    if trace_ctx is not None:
                        payload = replace(payload, trace_ctx=trace_ctx)
                    if obs.enabled and obs.profile_ipc:
                        # What actually crosses the boundary: the job the
                        # pool pickles.  One extra dumps() per pooled job,
                        # gated behind its own knob for that reason.
                        obs.observe(
                            "executor.pickle_bytes",
                            len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)),
                        )
                    futures.append(
                        (
                            i,
                            _time.perf_counter(),
                            pool.submit(run_component_job, payload, deadline),
                        )
                    )
                for i, submit_s, future in futures:
                    result = future.result()
                    results[i] = result
                    pooled_sum += result.search_s
                    pooled_max = max(pooled_max, result.search_s)
                    if obs.enabled:
                        obs.adopt(result.spans)
                        if result.start_s:
                            obs.observe(
                                "executor.queue_wait_s",
                                max(result.start_s - submit_s, 0.0),
                            )
            except Exception as exc:
                # Graceful degradation: drop the (possibly broken) pool so
                # the next epoch gets a fresh one, and serve this epoch
                # serially — same results, just slower.
                _LOG.warning(
                    "parallel dispatch failed (%s: %s); falling back to serial",
                    type(exc).__name__,
                    exc,
                )
                _discard_pool(self.max_workers)
                self._fallbacks += 1
                obs.count("executor.fallbacks")
                serial_results, stats = SerialExecutor().run(jobs, deadline, obs=obs)
                # Per-dispatch stats: THIS dispatch fell back exactly once.
                # The executor's lifetime total lives in ``_fallbacks``;
                # reporting it here would re-bill every historic fallback
                # on each later epoch when the consumer sums dispatches.
                stats.fallbacks = 1
                return serial_results, stats

        wall = _time.perf_counter() - start
        search = inline_s + pooled_sum
        if obs.enabled:
            obs.count("executor.pooled_jobs", len(pooled))
            obs.count("executor.inline_jobs", len(jobs) - len(pooled))
        # Ideal critical path of this dispatch: inline work is sequential
        # in the parent, pooled work is bounded below by its longest job
        # and by perfect division across the workers.
        ideal = inline_s + max(pooled_max, pooled_sum / self.max_workers)
        return results, ExecutorStats(
            jobs=len(jobs),
            parallel_jobs=len(pooled),
            search_s=search,
            wall_s=wall,
            overhead_s=max(0.0, wall - ideal),
        )


def make_executor(kind: str, max_workers: Optional[int] = None) -> SearchExecutor:
    """Factory behind ``PlannerConfig.executor``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor: {kind!r} (expected 'serial' or 'parallel')")
