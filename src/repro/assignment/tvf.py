"""Task Value Function (Section IV-B, Eq. 11–12).

The TVF estimates the long-term value (expected total number of assigned
tasks) of taking an action — assigning a particular maximal valid task
sequence to a particular worker — in a given state (remaining workers and
tasks).  Training data ``U`` is produced by the exact DFSearch (Alg. 1);
the network is fitted with the Q-learning regression loss of Eq. 12 on
mini-batches drawn uniformly at random from ``U``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.core.task import Task
from repro.core.worker import Worker
from repro.nn.tensor import Tensor, no_grad
from repro.spatial.geometry import euclidean_distance

#: Dimensionality of the hand-crafted state-action feature vector.
FEATURE_DIM = 14


@dataclass
class Experience:
    """A single ``(s_t, a_t, opt)`` training sample."""

    state: dict
    action: dict
    value: float


def featurize_state_action(
    state: dict,
    action: dict,
    workers_by_id: Dict[int, Worker],
    tasks_by_id: Dict[int, Task],
) -> np.ndarray:
    """Map a (state, action) pair to a fixed-size feature vector.

    The state contributes aggregate supply/demand statistics (how many
    workers and tasks remain, how urgent the tasks are); the action
    contributes the chosen worker's capabilities and the geometry of the
    chosen task sequence.  All features are scale-stabilised (log1p or
    ratios) so a single network generalises across instance sizes.
    """
    num_workers = float(state.get("num_workers", 0))
    num_tasks = float(state.get("num_tasks", 0))
    remaining_task_ids = state.get("task_ids", ())
    remaining_tasks = [tasks_by_id[tid] for tid in remaining_task_ids if tid in tasks_by_id]

    worker = workers_by_id.get(action.get("worker_id"))
    action_task_ids = action.get("task_ids", ())
    action_tasks = [tasks_by_id[tid] for tid in action_task_ids if tid in tasks_by_id]
    sequence_length = float(action.get("sequence_length", len(action_task_ids)))

    # Aggregate demand statistics.
    if remaining_tasks:
        valid_durations = [t.valid_duration for t in remaining_tasks]
        mean_valid = float(np.mean(valid_durations))
        xs = [t.location.x for t in remaining_tasks]
        ys = [t.location.y for t in remaining_tasks]
        spread = float(np.std(xs) + np.std(ys))
    else:
        mean_valid = 0.0
        spread = 0.0

    # Worker / action geometry.
    if worker is not None:
        reach = worker.reachable_distance
        availability = worker.available_time
        speed = worker.speed
    else:
        reach = 0.0
        availability = 0.0
        speed = 1.0

    if worker is not None and action_tasks:
        path_length = euclidean_distance(worker.location, action_tasks[0].location)
        for a, b in zip(action_tasks, action_tasks[1:]):
            path_length += euclidean_distance(a.location, b.location)
        first_leg = euclidean_distance(worker.location, action_tasks[0].location)
        slack = float(
            np.mean([t.expiration_time - t.publication_time for t in action_tasks])
        )
    else:
        path_length = 0.0
        first_leg = 0.0
        slack = 0.0

    features = np.array(
        [
            np.log1p(num_workers),
            np.log1p(num_tasks),
            num_tasks / (num_workers + 1.0),
            np.log1p(len(remaining_tasks)),
            mean_valid,
            spread,
            sequence_length,
            sequence_length / (num_tasks + 1.0),
            reach,
            availability,
            speed,
            path_length,
            first_leg,
            slack,
        ],
        dtype=np.float64,
    )
    return features


class TaskValueFunction:
    """MLP approximator of the state-action value TVF(s, a).

    Parameters
    ----------
    hidden:
        Width of the two hidden layers.
    learning_rate:
        Adam step size for the Q-learning regression.
    seed:
        Seed for weight initialisation and replay sampling.
    """

    def __init__(self, hidden: int = 32, learning_rate: float = 0.005, seed: int = 0) -> None:
        self.network = nn.Sequential(
            nn.Linear(FEATURE_DIM, hidden, seed=seed),
            nn.ReLU(),
            nn.Linear(hidden, hidden, seed=seed + 1),
            nn.ReLU(),
            nn.Linear(hidden, 1, seed=seed + 2),
        )
        self.optimizer = nn.Adam(self.network.parameters(), lr=learning_rate)
        self.criterion = nn.MSELoss()
        self._rng = np.random.default_rng(seed)
        self._feature_mean = np.zeros(FEATURE_DIM)
        self._feature_std = np.ones(FEATURE_DIM)
        self._fitted = False

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _normalize(self, features: np.ndarray) -> np.ndarray:
        return (features - self._feature_mean) / self._feature_std

    # ------------------------------------------------------------------ #
    def fit(
        self,
        experience: Sequence[Tuple[dict, dict, float]],
        workers_by_id: Dict[int, Worker],
        tasks_by_id: Dict[int, Task],
        epochs: int = 20,
        batch_size: int = 64,
    ) -> List[float]:
        """Fit the TVF on DFSearch experience with the Eq. 12 loss.

        Returns the per-epoch loss curve.
        """
        if not experience:
            raise ValueError("cannot fit the TVF on empty experience")
        features = np.stack(
            [featurize_state_action(s, a, workers_by_id, tasks_by_id) for s, a, _ in experience]
        )
        targets = np.array([[value] for _, _, value in experience], dtype=np.float64)

        self._feature_mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std < 1e-8] = 1.0
        self._feature_std = std
        normalized = self._normalize(features)

        losses: List[float] = []
        n = normalized.shape[0]
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for begin in range(0, n, batch_size):
                idx = order[begin:begin + batch_size]
                self.optimizer.zero_grad()
                prediction = self.network(Tensor(normalized[idx]))
                loss = self.criterion(prediction, Tensor(targets[idx]))
                loss.backward()
                self.optimizer.clip_grad_norm(5.0)
                self.optimizer.step()
                epoch_loss += float(loss.item())
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self._fitted = True
        return losses

    # ------------------------------------------------------------------ #
    def value(
        self,
        state: dict,
        action: dict,
        workers_by_id: Dict[int, Worker],
        tasks_by_id: Dict[int, Task],
    ) -> float:
        """Predicted value of one (state, action) pair."""
        features = featurize_state_action(state, action, workers_by_id, tasks_by_id)
        with no_grad():
            out = self.network(Tensor(self._normalize(features)[None, :]))
        return float(out.data[0, 0])

    def values(
        self,
        state: dict,
        actions: Iterable[dict],
        workers_by_id: Dict[int, Worker],
        tasks_by_id: Dict[int, Task],
    ) -> np.ndarray:
        """Predicted values of several candidate actions in the same state."""
        actions = list(actions)
        if not actions:
            return np.array([])
        features = np.stack(
            [featurize_state_action(state, a, workers_by_id, tasks_by_id) for a in actions]
        )
        with no_grad():
            out = self.network(Tensor(self._normalize(features)))
        return out.data[:, 0]
