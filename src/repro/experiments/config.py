"""Experiment parameter grids (Table III) and run-time scaling.

The paper's full sweeps replay two-hour traces with up to 11,000 tasks and
training runs measured in hours.  ``ExperimentScale`` lets the same harness
run at three sizes:

* ``paper``  — the full Table III grid (hours of compute),
* ``default`` — a faithful but reduced grid for local runs,
* ``quick``  — the miniature grid used by the test-suite and the
  pytest-benchmark targets so they finish in minutes.

Whatever the scale, every figure keeps its sweep structure (same parameter
being varied, same methods compared) so the *shape* of the results is
directly comparable to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


#: Table III, defaults underlined in the paper.
PAPER_PARAMETERS: Dict[str, Dict] = {
    "delta_t": {"values": [5, 6, 7, 8, 9], "default": 5},
    "num_tasks_yueche": {"values": [7000, 8000, 9000, 10000, 11000], "default": 11000},
    "num_tasks_didi": {"values": [5000, 6000, 7000, 8000, 9000], "default": 8869},
    "num_workers_yueche": {"values": [200, 300, 400, 500, 600], "default": 600},
    "num_workers_didi": {"values": [300, 400, 500, 600, 700], "default": 700},
    "reachable_distance": {"values": [0.05, 0.1, 0.5, 1.0, 5.0], "default": 1.0},
    "available_time_hours": {"values": [0.25, 0.5, 0.75, 1.0, 1.25], "default": 1.0},
    "valid_time": {"values": [10, 20, 30, 40, 50], "default": 40},
}

#: Miniature grid with the same structure, used by tests and benchmarks.
QUICK_PARAMETERS: Dict[str, Dict] = {
    "delta_t": {"values": [5, 7, 9], "default": 5},
    "num_tasks_yueche": {"values": [300, 400, 500], "default": 500},
    "num_tasks_didi": {"values": [240, 320, 400], "default": 400},
    "num_workers_yueche": {"values": [30, 45, 60], "default": 60},
    "num_workers_didi": {"values": [40, 55, 70], "default": 70},
    "reachable_distance": {"values": [0.1, 0.5, 1.0, 5.0], "default": 1.0},
    "available_time_hours": {"values": [0.25, 0.75, 1.25], "default": 1.0},
    "valid_time": {"values": [20, 40, 60], "default": 40},
}

#: The five assignment methods of Section V-B.2, in the paper's order.
ASSIGNMENT_METHODS: List[str] = ["Greedy", "FTA", "DTA", "DTA+TP", "DATA-WA"]

#: The three demand predictors of Section V-B.1.
PREDICTION_METHODS: List[str] = ["LSTM", "Graph-Wavenet", "DDGNN"]


@dataclass
class ExperimentScale:
    """Controls how large the generated workloads and sweeps are."""

    name: str = "quick"
    #: Fraction of the Table II worker / task counts to generate.
    workload_scale: float = 0.05
    #: Grid resolution used by the demand predictor.
    grid_rows: int = 6
    grid_cols: int = 6
    #: History windows fed to the predictor and training epochs.
    history: int = 6
    epochs: int = 8
    #: Replanning cadence of the simulation platform (simulated seconds).
    replan_interval: float = 30.0
    #: Parameter grid to sweep.
    parameters: Dict[str, Dict] = field(default_factory=lambda: dict(QUICK_PARAMETERS))

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Miniature scale for tests and CI benchmarks."""
        return cls()

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Medium scale for local experimentation."""
        return cls(
            name="default",
            workload_scale=0.2,
            grid_rows=8,
            grid_cols=8,
            history=8,
            epochs=20,
            replan_interval=15.0,
            parameters=dict(QUICK_PARAMETERS),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Full paper-scale sweeps (expect long runtimes)."""
        return cls(
            name="paper",
            workload_scale=1.0,
            grid_rows=10,
            grid_cols=10,
            history=12,
            epochs=50,
            replan_interval=5.0,
            parameters=dict(PAPER_PARAMETERS),
        )

    # ------------------------------------------------------------------ #
    def parameter_values(self, key: str) -> Sequence:
        return self.parameters[key]["values"]

    def parameter_default(self, key: str):
        return self.parameters[key]["default"]
