"""Rule registry: every analysis rule, instantiated per run config."""

from __future__ import annotations

from typing import List

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Rule
from repro.analysis.rules.cache_key import CacheKeyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.metrics_partition import MetricsPartitionRule
from repro.analysis.rules.ordered_iteration import OrderedIterationRule
from repro.analysis.rules.picklability import PicklabilityRule

ALL_RULE_CLASSES = (
    DeterminismRule,
    OrderedIterationRule,
    PicklabilityRule,
    CacheKeyRule,
    MetricsPartitionRule,
)


def build_rules(config: AnalysisConfig) -> List[Rule]:
    """Instantiate every rule that the config activates.

    The structural rules (cache-key, metrics-partition, pool-picklability)
    only run when the config names their anchor modules; the site rules
    (determinism, ordered-iteration) only run over modules matched by
    ``deterministic_globs``.
    """
    rules: List[Rule] = [DeterminismRule(config), OrderedIterationRule(config)]
    if config.pool is not None:
        rules.append(PicklabilityRule(config))
    if config.cache_key is not None:
        rules.append(CacheKeyRule(config))
    if config.metrics is not None:
        rules.append(MetricsPartitionRule(config))
    return rules
