"""Demand Dependency Learning Module (Section III-B, Eq. 4–6).

Two node-embedding networks map the current cell features ``C^t`` to source
and target embeddings ``M1`` and ``M2``; their symmetric product, squashed
by tanh and normalised row-wise by softmax, is the dynamic adjacency matrix
``A^t`` describing how demand in one region influences another.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class DemandDependencyLearner(nn.Module):
    """Learns the dynamic graph adjacency matrix from cell features.

    Parameters
    ----------
    feature_dim:
        Dimensionality ``k`` of the per-cell feature vector ``c_i^t``.
    embedding_dim:
        Dimensionality of the node embeddings ``M1`` / ``M2``.
    seed:
        Seed for reproducible weight initialisation.
    """

    def __init__(self, feature_dim: int, embedding_dim: int = 16, seed: int | None = None) -> None:
        super().__init__()
        if feature_dim < 1 or embedding_dim < 1:
            raise ValueError("feature_dim and embedding_dim must be positive")
        self.feature_dim = feature_dim
        self.embedding_dim = embedding_dim
        # F_theta1 and F_theta2 of Eq. 4-5: small fully connected networks.
        self.source_net = nn.Sequential(
            nn.Linear(feature_dim, embedding_dim, seed=seed),
            nn.Tanh(),
            nn.Linear(embedding_dim, embedding_dim, seed=None if seed is None else seed + 1),
        )
        self.target_net = nn.Sequential(
            nn.Linear(feature_dim, embedding_dim, seed=None if seed is None else seed + 2),
            nn.Tanh(),
            nn.Linear(embedding_dim, embedding_dim, seed=None if seed is None else seed + 3),
        )

    def forward(self, cell_features: Tensor) -> Tensor:
        """Compute the dynamic adjacency matrix ``A^t``.

        Parameters
        ----------
        cell_features:
            ``(M, feature_dim)`` tensor of per-cell features at time ``t``
            (the paper's ``C^t``).

        Returns
        -------
        Tensor of shape ``(M, M)``, rows normalised by softmax.
        """
        cell_features = cell_features if isinstance(cell_features, Tensor) else Tensor(cell_features)
        if cell_features.ndim != 2 or cell_features.shape[1] != self.feature_dim:
            raise ValueError(
                f"expected cell features of shape (M, {self.feature_dim}), got {cell_features.shape}"
            )
        source = self.source_net(cell_features)    # M1
        target = self.target_net(cell_features)    # M2
        # Eq. 6: softmax(tanh(M1 M2^T + M2 M1^T)) — symmetric interaction.
        interaction = (source @ target.T + target @ source.T).tanh()
        return interaction.softmax(axis=-1)


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetric degree normalisation used by APPNP (Eq. 8–9).

    Computes ``D^{-1/2} (A + I) D^{-1/2}`` where ``D`` is the diagonal degree
    matrix of ``A + I``.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    matrix = adjacency + np.eye(adjacency.shape[0]) if add_self_loops else adjacency.copy()
    degrees = matrix.sum(axis=1)
    degrees = np.maximum(degrees, 1e-12)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return inv_sqrt[:, None] * matrix * inv_sqrt[None, :]


def distance_adjacency(grid, scale: float = 1.0, threshold: float = 0.0) -> np.ndarray:
    """Static, distance-based adjacency baseline (for the ablation study).

    Cell ``i`` and ``j`` are connected with weight ``exp(-dist(i, j) / scale)``;
    weights below ``threshold`` are zeroed.
    """
    n = grid.num_cells
    adjacency = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            weight = float(np.exp(-grid.cell_distance(i, j) / max(scale, 1e-12)))
            adjacency[i, j] = weight if weight >= threshold else 0.0
    row_sums = adjacency.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0.0] = 1.0
    return adjacency / row_sums
