"""Reachable-task computation (Section IV-A.1).

A task ``s`` is *reachable* for worker ``w`` at time ``t_now`` iff

i.   the worker can arrive strictly before the task expires:
     ``c(w.l, s.l) < s.e - t_now``,
ii.  the trip fits in the worker's remaining availability window ``T_w``:
     ``c(w.l, s.l) < T_w``, and
iii. the task lies within the worker's reachable range:
     ``td(w.l, s.l) <= w.d``.

Constraints i and ii are strict to match Definition 4's validity checks
(``arrival >= expiration`` invalidates a sequence): a task whose arrival
would coincide exactly with its expiration is *not* reachable, so the
reachable set never contains tasks that no valid sequence could serve.

Two equivalent implementations are provided: a scalar reference path and a
vectorized path over a :class:`~repro.spatial.travel_matrix.TravelMatrix`.
They apply identical predicates to identical floats and therefore return
identical task lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.index import SpatialIndex
from repro.spatial.travel import EuclideanTravelModel, TravelModel
from repro.spatial.travel_matrix import TravelMatrix

#: Tolerance on the reachable-distance constraint (matches sequence checks).
_REACH_EPS = 1e-9

#: Below this many candidate tasks the scalar loop beats NumPy's per-call
#: overhead; the paths return bit-identical results, so switching is free.
VECTOR_MIN_TASKS = 32


def is_reachable(
    worker: Worker,
    task: Task,
    now: float,
    travel: Optional[TravelModel] = None,
) -> bool:
    """Whether ``task`` satisfies the three reachability constraints for ``worker``."""
    travel = travel or EuclideanTravelModel(speed=worker.speed)
    if task.is_expired(now):
        return False
    distance = travel.distance(worker.location, task.location)
    if distance > worker.reachable_distance + _REACH_EPS:
        return False
    travel_time = travel.time(worker.location, task.location)
    if travel_time >= task.expiration_time - now:
        return False
    if travel_time >= worker.availability_remaining(now):
        return False
    return True


def reachable_tasks(
    worker: Worker,
    tasks: Iterable[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_tasks: Optional[int] = None,
    hops: int = 1,
) -> List[Task]:
    """Return the reachable task subset ``RS_w`` for a worker.

    Parameters
    ----------
    max_tasks:
        Optional cap on the result size.  When set, the nearest reachable
        tasks are kept — this bounds the downstream sequence-enumeration
        cost for very dense instances without changing which workers
        compete for which regions.
    hops:
        Number of transitive-expansion rounds.  The paper's running example
        has worker ``w1`` perform ``(s1, s3)`` although ``s3`` is farther
        than ``w.d`` from ``w1``'s start — ``s3`` becomes reachable *via*
        ``s1``.  Each round adds the unexpired tasks within ``w.d`` of a
        task discovered in the *previous* round (breadth-first levels, so
        no anchor is ever rescanned); the per-leg time/distance feasibility
        is enforced later during sequence generation.
    """
    travel = travel or EuclideanTravelModel(speed=worker.speed)
    tasks = list(tasks)
    found = [task for task in tasks if is_reachable(worker, task, now, travel)]
    reach = worker.reachable_distance + _REACH_EPS
    frontier = found
    found_ids = {task.task_id for task in found}
    remaining = [
        task
        for task in tasks
        if not task.is_expired(now) and task.task_id not in found_ids
    ]
    for _ in range(max(hops, 0)):
        if not frontier or not remaining:
            break
        added: List[Task] = []
        still_remaining: List[Task] = []
        for task in remaining:
            if any(travel.distance(anchor.location, task.location) <= reach for anchor in frontier):
                added.append(task)
            else:
                still_remaining.append(task)
        if not added:
            break
        found.extend(added)
        frontier = added
        remaining = still_remaining
    if max_tasks is not None and len(found) > max_tasks:
        found.sort(key=lambda task: travel.distance(worker.location, task.location))
        found = found[:max_tasks]
    return found


def reachable_tasks_matrix(
    worker: Worker,
    tasks: Sequence[Task],
    now: float,
    matrix: TravelMatrix,
    max_tasks: Optional[int] = None,
    hops: int = 1,
    cols: Optional[np.ndarray] = None,
) -> List[Task]:
    """Vectorized :func:`reachable_tasks` over a cached :class:`TravelMatrix`.

    Every feasibility check is an array lookup; the transitive expansion is
    a boolean-mask sweep over the task→task distance matrix.  Produces the
    exact same task list (same order, same cap tie-breaking) as the scalar
    reference.  ``cols`` may carry precomputed matrix columns for ``tasks``
    (callers iterating many workers over one task list compute them once).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if cols is None:
        cols = matrix.task_cols(tasks)
    row = matrix.worker_row(worker.worker_id)
    mask = matrix.reachability_mask(worker, cols, now)

    alive = now < matrix.expirations[cols]
    reach = worker.reachable_distance + _REACH_EPS
    in_found = mask.copy()
    frontier = np.flatnonzero(mask)
    # Same output order as the scalar path: directly-reachable tasks first
    # (input order), then each breadth-first level in input order.
    found = [tasks[i] for i in frontier]
    for _ in range(max(hops, 0)):
        candidates = np.flatnonzero(alive & ~in_found)
        if frontier.size == 0 or candidates.size == 0:
            break
        near = (
            matrix.tt_dist_block(cols[frontier], cols[candidates]) <= reach
        ).any(axis=0)
        added = candidates[near]
        if added.size == 0:
            break
        found.extend(tasks[i] for i in added)
        in_found[added] = True
        frontier = added

    if max_tasks is not None and len(found) > max_tasks:
        dist = matrix.wt_dist[row, matrix.task_cols(found)]
        order = np.argsort(dist, kind="stable")
        found = [found[i] for i in order[:max_tasks]]
    return found


def reachable_tasks_indexed(
    worker: Worker,
    index: SpatialIndex,
    tasks_by_id: Dict[int, Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_tasks: Optional[int] = None,
    matrix: Optional[TravelMatrix] = None,
    hops: int = 1,
    positions: Optional[Dict[int, int]] = None,
) -> List[Task]:
    """Reachable tasks using a spatial index for the radius pre-filter.

    ``index`` maps task ids to locations; ``tasks_by_id`` resolves ids back
    to :class:`Task` objects.  Only candidates within the Euclidean radius
    covering ``(hops + 1)`` reach-length travel legs are examined in detail
    (each transitive hop extends the horizon by one worker reach; the
    travel model's :meth:`~repro.spatial.travel.TravelModel.reach_bound`
    converts that travel-distance budget into a Euclidean radius the index
    can query), which keeps per-event replanning cheap on large
    instances.  Candidates keep the iteration order of ``tasks_by_id``, so
    the result is exactly what the full scan over ``tasks_by_id.values()``
    would return — independent of index-bucket iteration order.  Callers
    looping over many workers should pass ``positions`` (task id -> position
    in ``tasks_by_id``, computed once); the order is then recovered with a
    sort over the few candidates instead of a scan over every open task.
    """
    travel = travel or EuclideanTravelModel(speed=worker.speed)
    radius = travel.reach_bound((hops + 1.0) * worker.reachable_distance) + 1e-6
    candidate_ids = index.query_radius(worker.location, radius)
    if positions is not None:
        in_scope = [tid for tid in candidate_ids if tid in positions]
        in_scope.sort(key=positions.__getitem__)
        candidates = [tasks_by_id[tid] for tid in in_scope]
    else:
        id_set = set(candidate_ids)
        candidates = [
            task for task_id, task in tasks_by_id.items() if task_id in id_set
        ]
    if (
        matrix is not None
        and len(candidates) >= VECTOR_MIN_TASKS
        and all(task.task_id in matrix for task in candidates)
    ):
        return reachable_tasks_matrix(
            worker, candidates, now, matrix, max_tasks=max_tasks, hops=hops
        )
    return reachable_tasks(worker, candidates, now, travel, max_tasks=max_tasks, hops=hops)


def reachable_tasks_with_horizon(
    worker: Worker,
    tasks: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_tasks: Optional[int] = None,
    hops: int = 1,
    matrix: Optional[TravelMatrix] = None,
):
    """Reachable set plus a conservative validity horizon.

    Returns ``(capped, uncapped_ids, horizon)`` where ``capped`` is exactly
    what :func:`reachable_tasks` returns for the same arguments,
    ``uncapped_ids`` is the id set of the *uncapped* reachable set (every
    task whose presence influences the output, including hop anchors the
    distance cap later drops), and ``horizon`` is a time ``h > now`` such
    that for any ``now' in [now, h)`` — with the worker and the task set
    unchanged — :func:`reachable_tasks` returns the identical list.

    The horizon exploits the monotonicity of the reachability predicates
    for a windowless worker: as ``now`` grows, ``s.e - now`` and
    ``off - now`` only shrink, so tasks can only *leave* the reachable set,
    and they do so exactly when one of the finitely many boundaries
    ``s.e - c(w, s)``, ``off - c(w, s)`` (direct members) or ``s.e`` (hop
    members) is crossed.  Workers with extra availability windows have a
    non-monotone ``availability_remaining`` and get ``horizon = now``
    (never cacheable).

    Under a time-dependent travel model the monotone-shrink argument only
    holds *inside* one speed-profile window (a faster next window can make
    tasks re-enter the set), so the horizon is additionally clamped to the
    model's ``next_profile_boundary(now)`` — infinite for static models,
    leaving their horizons untouched.
    """
    travel = travel or EuclideanTravelModel(speed=worker.speed)
    tasks = list(tasks)
    if matrix is not None and len(tasks) >= VECTOR_MIN_TASKS:
        uncapped = reachable_tasks_matrix(worker, tasks, now, matrix, max_tasks=None, hops=hops)
    else:
        uncapped = reachable_tasks(worker, tasks, now, travel, max_tasks=None, hops=hops)

    capped = uncapped
    if max_tasks is not None and len(uncapped) > max_tasks:
        capped = sorted(
            uncapped, key=lambda task: travel.distance(worker.location, task.location)
        )[:max_tasks]

    if worker.windows or not (worker.on_time <= now < worker.off_time):
        # Multi-window availability is not monotone in ``now`` (remaining
        # availability can jump up when a later window opens), so no
        # time-based reuse is safe; same for workers outside [on, off).
        horizon = now
    else:
        horizon = float("inf")
        for task in uncapped:
            if is_reachable(worker, task, now, travel):
                leg = travel.time(worker.location, task.location)
                horizon = min(
                    horizon, task.expiration_time - leg, worker.off_time - leg
                )
            else:
                # Present only through transitive expansion: it leaves the
                # set when it expires (its anchors' departures are covered
                # by the direct boundaries above).
                horizon = min(horizon, task.expiration_time)
        # Travel costs themselves may flip at the next speed-profile
        # boundary (an empty set can become non-empty there, which no
        # per-task boundary above covers).  Either source may have
        # produced the costs (the matrix on large candidate sets, the
        # scalar model otherwise and in the horizon loop above), so clamp
        # to the minimum boundary over both — over-clamping is sound, and
        # when both reference the same model (the supported
        # configuration) the minimum is that model's boundary.
        horizon = min(horizon, travel.next_profile_boundary(now))
        if matrix is not None:
            horizon = min(horizon, matrix.travel.next_profile_boundary(now))
    return capped, frozenset(task.task_id for task in uncapped), horizon


def mutual_reachability(
    workers: Sequence[Worker],
    tasks: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_tasks_per_worker: Optional[int] = None,
    index: Optional[SpatialIndex] = None,
    matrix: Optional[TravelMatrix] = None,
) -> dict:
    """Reachable-task sets for every worker, keyed by worker id.

    With ``index`` the per-worker candidate set comes from a radius query
    instead of an all-pairs scan; with ``matrix`` the feasibility checks are
    vectorized array lookups.  Both options preserve the scalar result.
    """
    if index is not None:
        tasks_by_id = {task.task_id: task for task in tasks}
        positions = {task.task_id: i for i, task in enumerate(tasks)}
        return {
            worker.worker_id: reachable_tasks_indexed(
                worker,
                index,
                tasks_by_id,
                now,
                travel,
                max_tasks=max_tasks_per_worker,
                matrix=matrix,
                positions=positions,
            )
            for worker in workers
        }
    if matrix is not None:
        return {
            worker.worker_id: reachable_tasks_matrix(
                worker, tasks, now, matrix, max_tasks=max_tasks_per_worker
            )
            for worker in workers
        }
    return {
        worker.worker_id: reachable_tasks(
            worker, tasks, now, travel, max_tasks=max_tasks_per_worker
        )
        for worker in workers
    }
