"""The task multivariate time series of Section III-A (Eq. 2).

For every grid cell ``i`` the historical task stream is summarised as a
sequence of vectors ``c_i^t`` of ``k`` binary dimensions; dimension ``j`` is
1 iff at least one task was published in cell ``i`` during the ``j``-th
sub-interval of length ``delta_t`` inside the window starting at ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.task import Task
from repro.spatial.grid import GridSpec


@dataclass
class TaskMultivariateTimeSeries:
    """Binary occupancy series for every grid cell.

    Attributes
    ----------
    values:
        Array of shape ``(P, M, k)``: ``P`` windows, ``M`` grid cells,
        ``k`` sub-intervals per window.
    start_time:
        ``t_0``, the left edge of the first window.
    delta_t:
        Sub-interval length ``delta_T``.
    k:
        Number of sub-intervals per window (the user-specified ``k > 1``).
    grid:
        The grid the cells refer to.
    """

    values: np.ndarray
    start_time: float
    delta_t: float
    k: int
    grid: GridSpec

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 3:
            raise ValueError("values must have shape (windows, cells, k)")
        if self.values.shape[1] != self.grid.num_cells:
            raise ValueError("number of cells does not match the grid")
        if self.values.shape[2] != self.k:
            raise ValueError("third dimension must equal k")

    # ------------------------------------------------------------------ #
    @property
    def num_windows(self) -> int:
        return self.values.shape[0]

    @property
    def num_cells(self) -> int:
        return self.values.shape[1]

    @property
    def window_length(self) -> float:
        """Length ``k * delta_T`` of each window."""
        return self.k * self.delta_t

    def window_start(self, index: int) -> float:
        """Left time edge of window ``index``."""
        return self.start_time + index * self.window_length

    def cell_series(self, cell: int) -> np.ndarray:
        """The paper's ``C_i``: all windows for a single cell, ``(P, k)``."""
        return self.values[:, cell, :]

    def occupancy_rate(self) -> float:
        """Fraction of (window, cell, interval) slots containing a task."""
        return float(self.values.mean()) if self.values.size else 0.0


def build_time_series(
    tasks: Iterable[Task],
    grid: GridSpec,
    start_time: float,
    end_time: float,
    delta_t: float,
    k: int,
) -> TaskMultivariateTimeSeries:
    """Build the task multivariate time series from a task stream.

    Tasks published outside ``[start_time, end_time)`` are ignored.  The
    number of windows ``P`` is the largest integer such that
    ``start_time + P * k * delta_t <= end_time`` (partial trailing windows
    are dropped so that every window has exactly ``k`` sub-intervals).
    """
    if delta_t <= 0:
        raise ValueError("delta_t must be positive")
    if k < 2:
        raise ValueError("k must be at least 2 (the paper requires k > 1)")
    if end_time <= start_time:
        raise ValueError("end_time must be after start_time")
    window_length = k * delta_t
    num_windows = int((end_time - start_time) // window_length)
    if num_windows < 1:
        raise ValueError("time range too short for a single window")
    values = np.zeros((num_windows, grid.num_cells, k))
    horizon = start_time + num_windows * window_length
    for task in tasks:
        t = task.publication_time
        if not start_time <= t < horizon:
            continue
        offset = t - start_time
        window = int(offset // window_length)
        sub = int((offset - window * window_length) // delta_t)
        sub = min(sub, k - 1)
        cell = grid.cell_index(task.location)
        values[window, cell, sub] = 1.0
    return TaskMultivariateTimeSeries(values, start_time, delta_t, k, grid)


def sliding_windows(
    series: TaskMultivariateTimeSeries, history: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (input, target) pairs for supervised next-window prediction.

    Parameters
    ----------
    series:
        Full multivariate time series.
    history:
        Number of past windows ``P`` used to predict the next one.

    Returns
    -------
    inputs:
        ``(N, history, M, k)`` array of past windows.
    targets:
        ``(N, M, k)`` array of the windows to predict.
    """
    if history < 1:
        raise ValueError("history must be at least 1")
    total = series.num_windows
    if total <= history:
        raise ValueError(
            f"series has {total} windows, need more than history={history}"
        )
    inputs: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    for end in range(history, total):
        inputs.append(series.values[end - history:end])
        targets.append(series.values[end])
    return np.stack(inputs), np.stack(targets)


def train_test_split_windows(
    inputs: np.ndarray, targets: np.ndarray, train_fraction: float = 0.8
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chronological train/test split of windowed samples.

    The paper uses 80% of the data for training and 20% for testing; a
    chronological split avoids look-ahead leakage.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = inputs.shape[0]
    cut = max(1, min(n - 1, int(round(n * train_fraction))))
    return inputs[:cut], targets[:cut], inputs[cut:], targets[cut:]
