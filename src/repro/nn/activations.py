"""Activation modules built on top of :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softmax(Module):
    """Softmax along a configurable axis (default: last)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)


class LeakyReLU(Module):
    """Leaky ReLU with a configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.relu() - (-x).relu() * self.negative_slope
