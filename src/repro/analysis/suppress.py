"""Inline suppression syntax: ``# repro: allow[rule-id] -- reason``.

A suppression comment silences findings of the named rule on its own
line or on the line directly below (so it can sit above a long
statement).  The reason is mandatory — a suppression without one is
itself reported (rule ``suppression-syntax``), and a suppression that
matches nothing is reported as stale (rule ``stale-suppression``) so
fixed code sheds its annotations instead of accreting them.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding, SourceModule

#: Matches the whole directive; the reason group is absent when the
#: ``--`` separator (or the text after it) is missing.
SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_*-]+)\]\s*(?:--\s*(\S.*?))?\s*$"
)

#: Meta-rules that can never be suppressed (suppressing the suppression
#: checker would defeat the point).
UNSUPPRESSABLE = {"suppression-syntax", "stale-suppression", "stale-registry"}


@dataclass
class Suppression:
    rule: str
    reason: str
    path: str
    line: int
    used: bool = field(default=False)

    def matches(self, finding: Finding) -> bool:
        if finding.rule in UNSUPPRESSABLE:
            return False
        if self.rule != "*" and self.rule != finding.rule:
            return False
        return finding.path == self.path and finding.line in (self.line, self.line + 1)


def parse_suppressions(
    module: SourceModule,
) -> Tuple[List[Suppression], List[Finding]]:
    """All suppressions in ``module`` plus syntax findings for bad ones."""
    suppressions: List[Suppression] = []
    problems: List[Finding] = []
    # Tokenize so that directive text inside string literals/docstrings
    # (e.g. documentation *about* the syntax) is never parsed as a
    # directive — only genuine comments count.
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(module.text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except tokenize.TokenizeError:  # pragma: no cover - parse already passed
        return suppressions, problems
    for lineno, comment in comments:
        match = SUPPRESS_RE.search(comment)
        if match is None:
            if "repro: allow" in comment:
                problems.append(
                    Finding(
                        rule="suppression-syntax",
                        path=module.relpath,
                        line=lineno,
                        message=(
                            "malformed suppression (expected "
                            "`# repro: allow[rule-id] -- reason`)"
                        ),
                        symbol=f"L{lineno}",
                    )
                )
            continue
        rule, reason = match.group(1), match.group(2)
        if not reason:
            problems.append(
                Finding(
                    rule="suppression-syntax",
                    path=module.relpath,
                    line=lineno,
                    message=(
                        f"suppression of `{rule}` is missing its written "
                        "reason (`-- why this is sound`)"
                    ),
                    symbol=f"L{lineno}:{rule}",
                )
            )
            continue
        suppressions.append(
            Suppression(rule=rule, reason=reason, path=module.relpath, line=lineno)
        )
    return suppressions, problems


def apply_suppressions(
    findings: Iterable[Finding], modules: Iterable[SourceModule]
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split findings into (active, suppressed) and report stale directives.

    Returns ``(active, suppressed, extra)`` where ``extra`` holds the
    suppression-syntax and stale-suppression findings.
    """
    all_suppressions: Dict[str, List[Suppression]] = {}
    extra: List[Finding] = []
    for module in modules:
        suppressions, problems = parse_suppressions(module)
        extra.extend(problems)
        if suppressions:
            all_suppressions[module.relpath] = suppressions

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        hit = None
        for suppression in all_suppressions.get(finding.path, ()):
            if suppression.matches(finding):
                hit = suppression
                break
        if hit is not None:
            hit.used = True
            suppressed.append(finding)
        else:
            active.append(finding)

    for suppressions in all_suppressions.values():
        for suppression in suppressions:
            if not suppression.used:
                extra.append(
                    Finding(
                        rule="stale-suppression",
                        path=suppression.path,
                        line=suppression.line,
                        message=(
                            f"suppression of `{suppression.rule}` matched "
                            "no finding — the code was fixed, remove the "
                            "annotation"
                        ),
                        symbol=f"L{suppression.line}:{suppression.rule}",
                    )
                )
    return active, suppressed, extra
