"""Branch-and-bound search microbenchmarks: dense dirty components.

PR 2's incremental engine made replanning cheap everywhere *except* inside
a dirty dense component, where the plain exact DFSearch saturates its node
budget.  This module measures the branch-and-bound engine against the
plain search on exactly that hot path and writes a ``bnb_search`` section
into ``BENCH_planning.json`` (merged, so the sections owned by the other
perf modules survive):

* **component search** — one-shot full-pipeline plans over
  density-controlled snapshots whose workers collapse into a few dense
  dependency components.  The plain search burns its full budget and
  degrades; branch-and-bound proves optimality after a fraction of the
  expansions.  Recorded per scale: nodes expanded, latency, planned
  tasks, and the nodes/latency ratios.
* **dirty component stream** — the PR 2 workload shape: an incremental
  planner replaying single events that keep dirtying a dense component,
  so every epoch pays one in-component search.  Same stream, same
  events, ``search_mode="exact"`` vs ``"bnb"``.

The same-run ratios (nodes and latency) are machine-invariant and
regression-gated by ``benchmarks/perf/check_regression.py``.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import print_figure

#: Perf smoke: separate CI job (see pytest.ini).
pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULT_FILE = REPO_ROOT / "BENCH_planning.json"

#: (name, workers, tasks, density) — denser than the incremental-replan
#: stream scales so the dependency graph forms large shared-task
#: components (the regime where the plain search saturates its budget).
DENSE_SCALES = [
    ("dense_small", 12, 70, 14.0),
    ("dense_medium", 20, 120, 16.0),
]


def make_dense_snapshot(num_workers, num_tasks, density, seed=7, reach=1.0):
    """Density-controlled snapshot forming large dependency components."""
    from repro.core.task import Task
    from repro.core.worker import Worker
    from repro.spatial.geometry import Point

    rng = random.Random(seed)
    area = math.sqrt(num_tasks * math.pi * reach * reach / density)
    workers = [
        Worker(
            i,
            Point(rng.uniform(0, area), rng.uniform(0, area)),
            reach * rng.uniform(0.8, 1.2),
            0.0,
            240.0,
        )
        for i in range(num_workers)
    ]
    tasks = [
        Task(
            10_000 + j,
            Point(rng.uniform(0, area), rng.uniform(0, area)),
            0.0,
            rng.uniform(20.0, 80.0),
        )
        for j in range(num_tasks)
    ]
    return workers, tasks, area, rng


def _latency_stats(samples):
    values = np.asarray(samples, dtype=np.float64) * 1000.0
    return float(values.mean()), float(np.percentile(values, 95))


@pytest.fixture(scope="module")
def bnb_results():
    """This module's numbers; merged into BENCH_planning.json at teardown."""
    section = {}
    yield section
    merged = json.loads(RESULT_FILE.read_text()) if RESULT_FILE.exists() else {}
    merged["bnb_search"] = section
    RESULT_FILE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


class TestComponentSearch:
    def test_dense_component_search(self, bench_scale, bnb_results):
        """One-shot plans on dense snapshots: plain exact vs branch-and-bound."""
        from repro.assignment.planner import PlannerConfig, TaskPlanner
        from repro.spatial.travel import EuclideanTravelModel

        repeats = 2 if bench_scale.name == "quick" else 4
        section = {}
        rows = []
        for name, num_workers, num_tasks, density in DENSE_SCALES:
            workers, tasks, _, _ = make_dense_snapshot(num_workers, num_tasks, density)
            stats = {}
            for mode in ("exact", "bnb"):
                samples = []
                outcome = None
                for _ in range(repeats):
                    planner = TaskPlanner(
                        PlannerConfig(search_mode=mode, incremental_replan=False),
                        travel=EuclideanTravelModel(1.0),
                    )
                    start = time.perf_counter()
                    outcome = planner.plan(workers, tasks, 0.0)
                    samples.append(time.perf_counter() - start)
                mean_ms, _ = _latency_stats(samples)
                stats[mode] = (outcome, mean_ms)
            exact_outcome, exact_ms = stats["exact"]
            bnb_outcome, bnb_ms = stats["bnb"]
            nodes_ratio = exact_outcome.nodes_expanded / max(bnb_outcome.nodes_expanded, 1)
            speedup = exact_ms / max(bnb_ms, 1e-9)
            section[name] = {
                "workers": num_workers,
                "tasks": num_tasks,
                "density": density,
                "exact_nodes": exact_outcome.nodes_expanded,
                "bnb_nodes": bnb_outcome.nodes_expanded,
                "exact_planned": exact_outcome.planned_tasks,
                "bnb_planned": bnb_outcome.planned_tasks,
                "exact_mean_ms": round(exact_ms, 3),
                "bnb_mean_ms": round(bnb_ms, 3),
                "nodes_ratio": round(nodes_ratio, 2),
                "speedup": round(speedup, 2),
            }
            rows.append(
                {
                    "scale": f"{name} ({num_workers}w/{num_tasks}t)",
                    "exact_nodes": exact_outcome.nodes_expanded,
                    "bnb_nodes": bnb_outcome.nodes_expanded,
                    "exact_ms": f"{exact_ms:.1f}",
                    "bnb_ms": f"{bnb_ms:.1f}",
                    "nodes_ratio": f"{nodes_ratio:.1f}x",
                    "speedup": f"{speedup:.2f}x",
                }
            )
            # The acceptance bar: >=2x fewer expansions on dense components
            # (the committed numbers are far above it), and an answer at
            # least as good — the plain search truncates here, B&B proves
            # optimality, so it must never plan fewer tasks.
            assert nodes_ratio >= 2.0
            assert bnb_outcome.planned_tasks >= exact_outcome.planned_tasks
        bnb_results["component_search"] = section
        print_figure(
            "Dense-component exact search — plain DFSearch vs branch-and-bound",
            rows,
            ["scale", "exact_nodes", "bnb_nodes", "exact_ms", "bnb_ms", "nodes_ratio", "speedup"],
        )


class TestDirtyComponentStream:
    def test_dirty_dense_component_stream(self, bench_scale, bnb_results):
        """Incremental replans that keep re-searching one dense component."""
        from repro.assignment.planner import PlannerConfig, TaskPlanner
        from repro.core.task import Task
        from repro.spatial.geometry import Point
        from repro.spatial.travel import EuclideanTravelModel

        num_events = 6 if bench_scale.name == "quick" else 12
        name, num_workers, num_tasks, density = DENSE_SCALES[0]
        section = {}
        rows = []
        stats = {}
        for mode in ("exact", "bnb"):
            workers, tasks, area, rng = make_dense_snapshot(
                num_workers, num_tasks, density
            )
            planner = TaskPlanner(
                PlannerConfig(search_mode=mode, incremental_replan=True),
                travel=EuclideanTravelModel(1.0),
            )
            planner.plan(workers, tasks, 0.0)  # warm caches
            now = 0.0
            next_id = 50_000
            samples = []
            nodes = []
            planned = 0
            for event in range(num_events):
                now += 0.2
                if event % 3 == 2 and tasks:
                    # Dispatch inside the dense cluster: the component is
                    # dirtied and re-searched.
                    task = tasks.pop(rng.randrange(len(tasks)))
                    widx = rng.randrange(len(workers))
                    workers[widx] = workers[widx].moved_to(task.location)
                else:
                    tasks.append(
                        Task(
                            next_id,
                            Point(rng.uniform(0, area), rng.uniform(0, area)),
                            now,
                            now + rng.uniform(20.0, 80.0),
                        )
                    )
                    next_id += 1
                start = time.perf_counter()
                outcome = planner.plan(workers, tasks, now)
                samples.append(time.perf_counter() - start)
                nodes.append(outcome.nodes_expanded)
                planned += outcome.planned_tasks
            mean_ms, p95_ms = _latency_stats(samples)
            stats[mode] = {
                "mean_ms": mean_ms,
                "p95_ms": p95_ms,
                "mean_nodes": sum(nodes) / len(nodes),
                "planned": planned,
            }
        nodes_ratio = stats["exact"]["mean_nodes"] / max(stats["bnb"]["mean_nodes"], 1)
        speedup = stats["exact"]["mean_ms"] / max(stats["bnb"]["mean_ms"], 1e-9)
        section[name] = {
            "workers": num_workers,
            "tasks": num_tasks,
            "events": num_events,
            "exact_mean_replan_ms": round(stats["exact"]["mean_ms"], 3),
            "bnb_mean_replan_ms": round(stats["bnb"]["mean_ms"], 3),
            "exact_mean_nodes": round(stats["exact"]["mean_nodes"], 1),
            "bnb_mean_nodes": round(stats["bnb"]["mean_nodes"], 1),
            "exact_planned": stats["exact"]["planned"],
            "bnb_planned": stats["bnb"]["planned"],
            "nodes_ratio": round(nodes_ratio, 2),
            "speedup": round(speedup, 2),
        }
        rows.append(
            {
                "scale": f"{name} ({num_workers}w/{num_tasks}t)",
                "exact_ms": f"{stats['exact']['mean_ms']:.1f}",
                "bnb_ms": f"{stats['bnb']['mean_ms']:.1f}",
                "exact_nodes": f"{stats['exact']['mean_nodes']:.0f}",
                "bnb_nodes": f"{stats['bnb']['mean_nodes']:.0f}",
                "nodes_ratio": f"{nodes_ratio:.1f}x",
                "speedup": f"{speedup:.2f}x",
            }
        )
        bnb_results["dirty_component_stream"] = section
        print_figure(
            "Dirty dense-component replan stream — exact vs branch-and-bound",
            rows,
            ["scale", "exact_ms", "bnb_ms", "exact_nodes", "bnb_nodes", "nodes_ratio", "speedup"],
        )
        # Sanity floors well under the committed ratios (absorbing machine
        # noise); check_regression.py gates the committed numbers.
        assert nodes_ratio >= 2.0
        assert speedup >= 1.2
        assert stats["bnb"]["planned"] >= stats["exact"]["planned"]
