"""Spatial task assignments (Definition 5) and per-worker plans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker


@dataclass
class WorkerPlan:
    """A worker together with its planned valid task sequence ``VR(S_w)``."""

    worker: Worker
    sequence: TaskSequence

    def __post_init__(self) -> None:
        if self.sequence.worker.worker_id != self.worker.worker_id:
            raise ValueError("sequence is bound to a different worker")

    @property
    def num_tasks(self) -> int:
        return len(self.sequence)

    @property
    def task_ids(self) -> Tuple[int, ...]:
        return self.sequence.task_ids


class Assignment:
    """A spatial task assignment ``A``: a set of (worker, sequence) pairs.

    Enforces the single-task-assignment mode of the paper: a task may appear
    in at most one worker's sequence.
    """

    def __init__(self, plans: Optional[Iterable[WorkerPlan]] = None) -> None:
        self._plans: Dict[int, WorkerPlan] = {}
        self._task_owner: Dict[int, int] = {}
        for plan in plans or ():
            self.add(plan)

    # ------------------------------------------------------------------ #
    def add(self, plan: WorkerPlan) -> None:
        """Add or replace a worker's plan, keeping task ownership unique."""
        worker_id = plan.worker.worker_id
        if worker_id in self._plans:
            self.remove_worker(worker_id)
        for task in plan.sequence:
            owner = self._task_owner.get(task.task_id)
            if owner is not None and owner != worker_id:
                raise ValueError(
                    f"task {task.task_id} is already assigned to worker {owner}"
                )
        self._plans[worker_id] = plan
        for task in plan.sequence:
            self._task_owner[task.task_id] = worker_id

    def assign(self, worker: Worker, tasks: Iterable[Task]) -> None:
        """Convenience wrapper building the plan from a worker and tasks."""
        self.add(WorkerPlan(worker, TaskSequence(worker, tuple(tasks))))

    def remove_worker(self, worker_id: int) -> None:
        """Drop a worker's plan and release its tasks."""
        plan = self._plans.pop(worker_id, None)
        if plan is None:
            return
        for task in plan.sequence:
            self._task_owner.pop(task.task_id, None)

    # ------------------------------------------------------------------ #
    def plan_for(self, worker_id: int) -> Optional[WorkerPlan]:
        return self._plans.get(worker_id)

    def owner_of(self, task_id: int) -> Optional[int]:
        """Return the worker id a task is assigned to, or ``None``."""
        return self._task_owner.get(task_id)

    def __iter__(self) -> Iterator[WorkerPlan]:
        return iter(self._plans.values())

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._plans

    # ------------------------------------------------------------------ #
    @property
    def assigned_tasks(self) -> Set[Task]:
        """The paper's ``A.S``: the union of all assigned task sets."""
        tasks: Set[Task] = set()
        for plan in self._plans.values():
            tasks.update(plan.sequence)
        return tasks

    @property
    def num_assigned_tasks(self) -> int:
        """``|A.S|`` — the objective of the ATA problem."""
        return len(self._task_owner)

    @property
    def workers(self) -> List[Worker]:
        return [plan.worker for plan in self._plans.values()]

    def copy(self) -> "Assignment":
        """Shallow copy (plans are immutable value objects)."""
        return Assignment(list(self._plans.values()))

    def summary(self) -> Dict[str, float]:
        """Small dictionary of headline statistics for reporting."""
        lengths = [plan.num_tasks for plan in self._plans.values()]
        return {
            "workers": float(len(self._plans)),
            "assigned_tasks": float(self.num_assigned_tasks),
            "mean_sequence_length": float(sum(lengths) / len(lengths)) if lengths else 0.0,
            "max_sequence_length": float(max(lengths)) if lengths else 0.0,
        }
