"""Time-dependent travel: any base model scaled by a rush-hour profile.

:class:`TimeDependentTravelModel` wraps an arbitrary
:class:`~repro.spatial.travel.TravelModel` and divides its travel *times*
by the :class:`~repro.spatial.profiles.SpeedProfile` multiplier active at
the current planning epoch; travel *distances* are the base model's
unchanged (congestion slows couriers down, it does not move the streets).

Frozen-at-departure semantics
-----------------------------
The model is *clocked*: :meth:`begin_epoch` latches the profile window of
the current decision point, and every travel time evaluated until the next
``begin_epoch`` uses that single multiplier — including later legs of a
multi-task sequence whose departures would fall past a boundary.  This is
the standard frozen-at-departure approximation, and it is what keeps every
validity predicate in the form ``now + legs < bound`` with ``legs``
constant inside the window, so the whole static-model correctness stack
(validity horizons, dirty balls, bit-for-bit incremental replay) applies
per window.  The planner re-latches at every decision point and the
incremental engine clamps its horizons to
:meth:`~repro.spatial.travel.TravelModel.next_profile_boundary`, so the
approximation self-corrects at each boundary: plans computed in the old
window are re-planned from true positions in the new one.

Bit-for-bit guarantees carry over from the base model: scalar and
vectorized paths divide the identical base floats by the identical
multiplier, so they remain bit-identical to each other, and a uniform
(boundary-free) profile at multiplier ``1.0`` is *literally* the base
model — same floats, same horizons, same assignments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.spatial.profiles import SpeedProfile
from repro.spatial.travel import LegPricer, TravelModel

__all__ = ["TimeDependentTravelModel"]


class TimeDependentTravelModel(TravelModel):
    """Scale a base model's travel times by the profile at the epoch time.

    Parameters
    ----------
    base:
        The wrapped travel model (any backend: Euclidean, Manhattan,
        road-network, custom).
    profile:
        The speed multiplier over the day.
    now:
        Initial epoch time (the planner re-latches via
        :meth:`begin_epoch` at every decision point).
    """

    def __init__(
        self, base: TravelModel, profile: SpeedProfile, now: float = 0.0
    ) -> None:
        super().__init__(speed=base.speed)
        self.base = base
        self.profile = profile
        #: Euclidean-ball inflation for reach bounds, see :meth:`reach_bound`.
        self._bound_factor = 1.0 / min(1.0, profile.min_multiplier)
        self._epoch_now: float = now
        self._multiplier: float = profile.multiplier_at(now)
        base.begin_epoch(now)

    # ------------------------------------------------------------------ #
    # Epoch protocol
    # ------------------------------------------------------------------ #
    @property
    def multiplier(self) -> float:
        """The latched speed multiplier of the current epoch."""
        return self._multiplier

    def begin_epoch(self, now: float) -> None:
        """Latch the profile window active at ``now`` (and forward to base)."""
        self.base.begin_epoch(now)
        self._epoch_now = now
        self._multiplier = self.profile.multiplier_at(now)

    def next_profile_boundary(self, now: float) -> float:
        """Travel costs change at the profile's (or the base's) next boundary."""
        return min(
            self.profile.next_boundary(now), self.base.next_profile_boundary(now)
        )

    def leg_pricer(self, now: float) -> Optional[LegPricer]:
        """Per-leg departure-window pricer (PR 10).

        Returns a pricer that converts this epoch's frozen leg times into
        the multiplier active at each leg's simulated departure — the cost
        the platform actually pays, since execution dispatches one task at
        a time and re-latches the epoch at every departure.

        ``None`` — keeping the frozen semantics, which are then already
        exact — when the profile is uniform (no boundaries, so every
        departure shares the latched multiplier bit-for-bit), or when the
        wrapped base model is itself time-dependent (a scalar ratio cannot
        re-price the base component; the frozen approximation plus its
        boundary clamp remains the sound fallback there).
        """
        if self.profile._uniform:
            return None
        if self.base.next_profile_boundary(now) != float("inf"):
            return None
        return LegPricer(self.profile, self._multiplier)

    # ------------------------------------------------------------------ #
    # Scalar primitives
    # ------------------------------------------------------------------ #
    def distance(self, origin, destination) -> float:
        return self.base.distance(origin, destination)

    def time(self, origin, destination) -> float:
        return self.base.time(origin, destination) / self._multiplier

    # ------------------------------------------------------------------ #
    # Vectorized kernel (inherits the base's, scaled elementwise — IEEE-754
    # division by the same scalar keeps scalar/vector bit-equality).
    # ------------------------------------------------------------------ #
    def distance_matrix(self, ax, ay, bx, by) -> Optional[np.ndarray]:
        return self.base.distance_matrix(ax, ay, bx, by)

    def time_matrix(self, ax, ay, bx, by, dist=None) -> Optional[np.ndarray]:
        base_time = self.base.time_matrix(ax, ay, bx, by, dist=dist)
        if base_time is None:
            return None
        return base_time / self._multiplier

    def pairwise(self, origins, destinations, dest_coords=None):
        # Delegate to the base's pairwise (which may fuse distance and time
        # passes, e.g. the road-network snap/row gather) and scale times.
        dist, time = self.base.pairwise(origins, destinations, dest_coords=dest_coords)
        return dist, time / self._multiplier

    # ------------------------------------------------------------------ #
    def reach_bound(self, reach: float) -> float:
        """Conservative Euclidean cover for travel chains of length ``reach``.

        Distances are the base model's, so the base bound already satisfies
        the chain contract at every instant; the extra division by the
        profile's minimum multiplier (a no-op unless the profile dips below
        ``1``) additionally covers base models whose reported distances
        co-vary with their times, at the cost of slightly wider dirty
        balls and index queries — over-approximation is always sound here.
        """
        return self.base.reach_bound(reach) * self._bound_factor
