"""Maximal valid task sequence generation (Section IV-A.1, Eq. 10).

For a worker's reachable task set ``RS_w`` we enumerate valid task
sequences (Definition 4).  Among sequences over the same *set* of tasks,
only the minimum-completion-time order is kept (Eq. 10), and only sequences
that cannot be extended by any further reachable task are *maximal*.

The enumeration is exponential in the worst case; ``max_length`` bounds the
sequence length (workers rarely chain more than a handful of tasks inside
one availability window) and ``max_sequences`` bounds the output size.

The search runs on an explicit stack over precomputed leg-time arrays
(:class:`~repro.spatial.travel_matrix.LegTimes`): every worker→task and
task→task leg is evaluated exactly once per call — sliced out of a shared
:class:`~repro.spatial.travel_matrix.TravelMatrix` when one is supplied,
or computed scalar-by-scalar otherwise.  Both sources yield bit-identical
floats, so the enumeration result does not depend on which path fed it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sequence import TaskSequence, arrival_times
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.travel import EuclideanTravelModel, TravelModel
from repro.spatial.travel_matrix import LegTimes, TravelMatrix

#: Below this many reachable tasks the scalar leg precompute is cheaper
#: than matrix slicing; both sources yield bit-identical leg times.
_MATRIX_MIN_TASKS = 5


def best_order_for_subset(
    worker: Worker,
    subset: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
) -> Optional[TaskSequence]:
    """Return the minimum-completion-time valid ordering of ``subset``.

    Implements the Eq. 10 criterion by greedy nearest-feasible-next
    insertion with a fallback to full permutation search for small subsets.
    Returns ``None`` when no valid ordering exists.
    """
    travel = travel or EuclideanTravelModel(speed=worker.speed)
    subset = list(subset)
    if not subset:
        return TaskSequence(worker, ())
    if len(subset) <= 4:
        return _best_order_exhaustive(worker, subset, now, travel)
    return _best_order_greedy(worker, subset, now, travel)


def _best_order_exhaustive(
    worker: Worker, subset: List[Task], now: float, travel: TravelModel
) -> Optional[TaskSequence]:
    from itertools import permutations

    best: Optional[Tuple[float, TaskSequence]] = None
    for order in permutations(subset):
        sequence = TaskSequence(worker, order)
        if not sequence.is_valid(now, travel):
            continue
        completion = sequence.completion_time(now, travel)
        if best is None or completion < best[0]:
            best = (completion, sequence)
    return best[1] if best else None


def _best_order_greedy(
    worker: Worker, subset: List[Task], now: float, travel: TravelModel
) -> Optional[TaskSequence]:
    remaining = list(subset)
    order: List[Task] = []
    location = worker.location
    time = now
    while remaining:
        candidates = []
        for task in remaining:
            if travel.distance(location, task.location) > worker.reachable_distance + 1e-9:
                continue
            arrive = time + travel.time(location, task.location)
            if arrive < task.expiration_time and arrive < worker.off_time:
                candidates.append((arrive, task))
        if not candidates:
            return None
        candidates.sort(key=lambda pair: pair[0])
        arrive, chosen = candidates[0]
        order.append(chosen)
        remaining.remove(chosen)
        location = chosen.location
        time = arrive
    sequence = TaskSequence(worker, order)
    return sequence if sequence.is_valid(now, travel) else None


def maximal_valid_sequences(
    worker: Worker,
    reachable: Sequence[Task],
    now: float,
    travel: Optional[TravelModel] = None,
    max_length: int = 3,
    max_sequences: int = 64,
    matrix: Optional[TravelMatrix] = None,
    horizon_out: Optional[List[float]] = None,
    per_leg: bool = True,
) -> List[TaskSequence]:
    """Generate the maximal valid task sequence set ``Q_w``.

    The search proceeds depth-first over orderings, pruning any extension
    that violates Definition 4.  For every visited task *set* only the
    minimum-completion-time ordering is retained (Eq. 10), and a sequence
    is returned only if it is maximal, i.e. no reachable task can be
    appended without violating a constraint or the length bound.

    The empty sequence is never returned; a worker with no feasible task
    yields an empty list.

    Parameters
    ----------
    matrix:
        Optional shared :class:`TravelMatrix`; when given (and covering the
        worker and every reachable task) the leg times are array slices
        instead of per-pair travel-model calls.
    horizon_out:
        Optional single-element accumulator.  When given, the earliest
        future time at which this function's output could change — with the
        worker and ``reachable`` held fixed — is appended.  Every validity
        predicate has the form ``now + legs < bound`` with ``legs`` and
        ``bound`` time-invariant, so each evaluated-and-true predicate
        flips exactly at ``bound - legs``; predicates that are false stay
        false as ``now`` grows.  The minimum over those flip times is
        therefore a sound reuse horizon for incremental replanning.  The
        leg times themselves are only time-invariant inside one
        speed-profile window of the travel model, so the horizon is
        additionally clamped to ``next_profile_boundary(now)`` (infinite
        for static models).
    per_leg:
        Price each leg in the speed-profile window in force at its
        *departure* on the simulated clock (PR 10), instead of freezing
        every leg at the epoch multiplier.  Only takes effect when the
        model feeding the legs returns a pricer from
        :meth:`~repro.spatial.travel.TravelModel.leg_pricer` — static and
        uniform-profile models return ``None``, keeping this path
        bit-for-bit identical to the frozen one.  When active, each leg
        priced at the latched multiplier is rescaled by
        ``latched / multiplier_at(departure)`` (a no-op inside the
        latched window), and the reported horizon is additionally
        tightened to the earliest instant at which any evaluated leg's
        departure would cross into another window — shifting all
        departures by less than that slack preserves every window
        assignment, so arrivals shift uniformly and the frozen-path
        horizon reasoning applies unchanged between boundaries.
    """
    if max_length < 1:
        raise ValueError("max_length must be at least 1")
    # Boundary clamp for every reported horizon.  Either source may feed
    # the legs (the matrix when it covers the worker and every task, the
    # scalar model otherwise), so take the minimum boundary over both —
    # over-clamping is always sound, and for the supported configuration
    # (both referencing the same model) the minimum *is* that model's
    # boundary.
    if horizon_out is not None:
        profile_boundary = float("inf")
        if travel is not None:
            profile_boundary = travel.next_profile_boundary(now)
        if matrix is not None:
            profile_boundary = min(
                profile_boundary, matrix.travel.next_profile_boundary(now)
            )
    reachable = list(reachable)
    if not reachable:
        if horizon_out is not None:
            horizon_out.append(profile_boundary)
        return []

    # Eq. 10 comparisons (minimum-completion order per subset, and the
    # final ranking) run on *relative* accumulated leg times — the same
    # sums shifted to a time origin of zero.  Comparing absolute arrivals
    # ``now + legs`` is not invariant under a shift of ``now``: two orders
    # whose leg sums differ by less than one ulp of ``now`` can round to
    # equality at one epoch and to either strict order at another, so the
    # tie winner would change while every validity predicate — and hence
    # the reuse horizon — stays constant.  Road-network models make such
    # ties structural (tasks snapping to one node give permutations with
    # literally identical sums), and the incremental engine's replay
    # guarantee needs the winner to be a pure function of the leg times.
    # Validity predicates keep using absolute arrivals, unchanged.

    if (
        matrix is not None
        and len(reachable) >= _MATRIX_MIN_TASKS
        and matrix.has_worker(worker.worker_id)
        and all(task.task_id in matrix for task in reachable)
    ):
        legs = matrix.leg_times(worker, reachable)
        legs_model = matrix.travel
    else:
        travel = travel or EuclideanTravelModel(speed=worker.speed)
        legs = LegTimes.from_scalar(worker, reachable, travel)
        legs_model = travel
    # The pricer must come from the model whose latched multiplier is
    # baked into the leg arrays it will rescale.
    pricer = legs_model.leg_pricer(now) if per_leg else None

    n = len(reachable)
    expirations = [task.expiration_time for task in reachable]
    off_time = worker.off_time
    reach = worker.reachable_distance + 1e-9
    budget = max_sequences * 8

    # Best ordering per task subset, keyed by the subset's index bitmask
    # (bijective with the task-id frozenset, far cheaper to build and hash):
    # mask -> (relative completion time, index order).
    best_by_subset: Dict[int, Tuple[float, Tuple[int, ...]]] = {}

    # Depth-first search on an explicit stack.  A frame is
    # (prefix, used_bitmask, arrival_at_last, relative_arrival,
    # next_candidate, is_entry): ``is_entry`` marks the first visit of a
    # search node (where the budget bailout applies); resumed frames
    # continue the candidate loop after a deeper exploration returned.
    worker_time = legs.worker_time
    worker_dist = legs.worker_dist
    task_time = legs.task_time
    task_dist = legs.task_dist
    min_slack = float("inf")
    min_boundary_slack = float("inf")
    stack: List[Tuple[Tuple[int, ...], int, float, float, int, bool]] = [
        ((), 0, now, 0.0, 0, True)
    ]
    while stack:
        prefix, used, time, rel_time, start, is_entry = stack.pop()
        if is_entry and len(best_by_subset) >= budget:
            continue
        if prefix:
            time_row = task_time[prefix[-1]]
            dist_row = task_dist[prefix[-1]]
        else:
            time_row = worker_time
            dist_row = worker_dist
        if pricer is not None:
            # Every candidate leg of this frame departs at ``time``: one
            # window lookup prices them all.  The departure's distance to
            # its boundary tightens the reuse horizon — but only when the
            # frame actually prices a leg (below); a frame with no
            # remaining candidates evaluates nothing a window change
            # could flip.
            ratio, boundary_slack = pricer.ratio_and_slack(time)
        else:
            ratio = 1.0
        evaluated = False
        for i in range(start, n):
            if used >> i & 1:
                continue
            evaluated = True
            leg = time_row[i] if ratio == 1.0 else time_row[i] * ratio
            arrive = time + leg
            if arrive >= expirations[i] or arrive >= off_time:
                continue
            if dist_row[i] > reach:
                continue
            rel_arrive = rel_time + leg
            slack = min(expirations[i] - arrive, off_time - arrive)
            if slack < min_slack:
                min_slack = slack
            key = used | (1 << i)
            existing = best_by_subset.get(key)
            new_prefix = prefix + (i,)
            if existing is None or rel_arrive < existing[0]:
                best_by_subset[key] = (rel_arrive, new_prefix)
            # Only continue extending from the best-known order of this
            # subset to curb redundant exploration.
            if len(new_prefix) < max_length and (
                existing is None or rel_arrive <= existing[0]
            ):
                stack.append((prefix, used, time, rel_time, i + 1, False))
                stack.append((new_prefix, key, arrive, rel_arrive, 0, True))
                break
        if evaluated and pricer is not None and boundary_slack < min_boundary_slack:
            min_boundary_slack = boundary_slack

    if horizon_out is not None:
        horizon_out.append(
            min(now + min_slack, now + min_boundary_slack, profile_boundary)
        )

    if not best_by_subset:
        return []

    # Keep only maximal subsets: no other stored subset strictly contains
    # them.  An inverted member -> subsets index narrows each containment
    # check to the subsets sharing at least one member (the all-pairs scan
    # was quadratic in |best_by_subset| and dominated dense instances).
    masks = list(best_by_subset.keys())
    sizes = [mask.bit_count() for mask in masks]
    max_size = max(sizes)
    positions_by_member: Dict[int, List[int]] = {}
    for position, mask in enumerate(masks):
        bits = mask
        while bits:
            low = bits & -bits
            positions_by_member.setdefault(low, []).append(position)
            bits ^= low
    maximal: List[int] = []
    for position, mask in enumerate(masks):
        size = sizes[position]
        if size < max_size:
            shortest = None
            bits = mask
            while bits:
                low = bits & -bits
                members = positions_by_member[low]
                if shortest is None or len(members) < len(shortest):
                    shortest = members
                bits ^= low
            if any(
                sizes[p] > size and masks[p] & mask == mask for p in shortest
            ):
                continue
        maximal.append(mask)

    # Rank by (more tasks, earlier relative completion) and bound the
    # output size.  The relative completion was recorded during the search,
    # so the sort key is a dictionary lookup rather than a fresh
    # arrival-times recomputation (and, being now-free, ranks identically
    # at every epoch the sequence set itself is unchanged).
    ranked = sorted(
        maximal, key=lambda mask: (-mask.bit_count(), best_by_subset[mask][0])
    )
    return [
        TaskSequence(worker, tuple(reachable[i] for i in best_by_subset[mask][1]))
        for mask in ranked[:max_sequences]
    ]


def sequence_signature(sequence: TaskSequence) -> FrozenSet[int]:
    """The set of task ids covered by a sequence (used for deduplication)."""
    return frozenset(sequence.task_ids)
