"""TVF-guided search over the partition tree (Algorithm 2).

``dfsearch_tvf`` walks the partition tree like Algorithm 1 but, instead of
branching over every candidate sequence, greedily commits each worker to
the sequence the trained Task Value Function scores highest.  This removes
the backtracking and makes the per-node cost linear in the number of
candidate sequences, which is where DATA-WA's CPU savings over DTA+TP come
from.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.assignment.dfsearch import _action_snapshot, _state_snapshot, DFSearchResult, SearchContext
from repro.assignment.tree import PartitionNode
from repro.assignment.tvf import StateFeatureCache, TaskValueFunction
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker


def _guided(
    node: PartitionNode,
    task_ids: FrozenSet[int],
    pending_workers: Tuple[int, ...],
    sequences_by_worker: Dict[int, List[TaskSequence]],
    workers_by_id: Dict[int, Worker],
    tasks_by_id: Dict[int, Task],
    tvf: TaskValueFunction,
    nodes_expanded: List[int],
    state_cache: Optional[StateFeatureCache] = None,
) -> Tuple[int, List[Tuple[int, Tuple[int, ...]]], FrozenSet[int]]:
    """Recursive core of Algorithm 2; returns (assigned, selections, remaining tasks)."""
    nodes_expanded[0] += 1

    if not pending_workers:
        total = 0
        selections: List[Tuple[int, Tuple[int, ...]]] = []
        remaining = task_ids
        for child in node.children:
            child_total, child_sel, remaining = _guided(
                child,
                remaining,
                tuple(child.workers),
                sequences_by_worker,
                workers_by_id,
                tasks_by_id,
                tvf,
                nodes_expanded,
                state_cache,
            )
            total += child_total
            selections.extend(child_sel)
        return total, selections, remaining

    worker_id, *rest = pending_workers
    worker = workers_by_id[worker_id]
    candidates = [
        sequence
        for sequence in sequences_by_worker.get(worker_id, [])
        if sequence.task_ids and sequence.task_id_set <= task_ids
    ]

    chosen: Optional[TaskSequence] = None
    if candidates:
        descendant = node.descendant_workers()
        state = _state_snapshot(list(pending_workers) + descendant, task_ids)
        actions = [_action_snapshot(worker, sequence) for sequence in candidates]
        if tvf.is_fitted:
            state_features = state_cache.features(state) if state_cache else None
            scores = tvf.values(
                state, actions, workers_by_id, tasks_by_id, state_features=state_features
            )
            best_index = int(scores.argmax())
        else:
            # Untrained TVF: fall back to the longest sequence (earliest in
            # candidate order on ties), matching the DFSearch tie-breaking
            # heuristic.  ``Q_w`` from maximal_valid_sequences is already
            # ranked longest-first, but callers may pass hand-built or
            # filtered sequence sets in any order, so pick explicitly
            # rather than trusting ``candidates[0]``.
            best_index = 0
            best_length = len(candidates[0])
            for index in range(1, len(candidates)):
                if len(candidates[index]) > best_length:
                    best_index = index
                    best_length = len(candidates[index])
        chosen = candidates[best_index]

    if chosen is None:
        selections = [(worker_id, ())]
        assigned = 0
        remaining = task_ids
    else:
        selections = [(worker_id, chosen.task_ids)]
        assigned = len(chosen)
        remaining = task_ids - frozenset(chosen.task_ids)

    sub_assigned, sub_selections, remaining = _guided(
        node,
        remaining,
        tuple(rest),
        sequences_by_worker,
        workers_by_id,
        tasks_by_id,
        tvf,
        nodes_expanded,
        state_cache,
    )
    return assigned + sub_assigned, selections + sub_selections, remaining


def dfsearch_tvf(
    node: PartitionNode,
    tasks: Sequence[Task],
    sequences_by_worker: Dict[int, List[TaskSequence]],
    workers_by_id: Dict[int, Worker],
    tvf: TaskValueFunction,
) -> DFSearchResult:
    """Run Algorithm 2 on a partition-tree node with a trained TVF."""
    tasks_by_id = {task.task_id: task for task in tasks}
    task_ids = frozenset(tasks_by_id.keys())
    nodes_expanded = [0]
    state_cache = StateFeatureCache(tasks_by_id) if tvf.is_fitted else None
    assigned, selections, _ = _guided(
        node,
        task_ids,
        tuple(node.workers),
        sequences_by_worker,
        workers_by_id,
        tasks_by_id,
        tvf,
        nodes_expanded,
        state_cache,
    )
    return DFSearchResult(
        opt=assigned,
        selections=selections,
        nodes_expanded=nodes_expanded[0],
        experience=[],
    )
