"""Road-network subsystem unit tests: graphs, Dijkstra rows, the model."""

import math
import random

import numpy as np
import pytest

from repro.roadnet import (
    RoadNetwork,
    RoadNetworkTravelModel,
    dijkstra_row,
    grid_network,
    load_edge_list,
    many_to_many,
    radial_network,
    save_edge_list,
)
from repro.spatial.geometry import Point, euclidean_distance


def _as_nx(network):
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(network.num_nodes))
    for u in range(network.num_nodes):
        nbrs, lengths, times = network.out_edges(u)
        for v, length, time in zip(nbrs.tolist(), lengths.tolist(), times.tolist()):
            graph.add_edge(u, v, time=time, length=length)
    return graph


class TestGraph:
    def test_grid_shape_and_dilation(self):
        net = grid_network(5, 7, spacing=0.5)
        assert net.num_nodes == 35
        # 4 horizontal + ... each undirected pair contributes 2 directed edges.
        undirected = 5 * 6 + 7 * 4
        assert net.num_edges == 2 * undirected
        assert net.min_dilation == pytest.approx(1.0)
        assert net.node_point(0) == Point(0.0, 0.0)

    def test_radial_shape(self):
        net = radial_network(rings=3, spokes=6, ring_spacing=1.0)
        assert net.num_nodes == 1 + 3 * 6
        assert net.min_dilation >= 1.0 - 1e-12
        # CSR is internally consistent.
        assert net.indptr[0] == 0
        assert net.indptr[-1] == net.num_edges
        assert (np.diff(net.indptr) >= 0).all()

    def test_speed_jitter_makes_times_asymmetric(self):
        net = grid_network(4, 4, seed=11, speed_jitter=0.4)
        asym = 0
        for u in range(net.num_nodes):
            nbrs, _, times = net.out_edges(u)
            for v, t_uv in zip(nbrs.tolist(), times.tolist()):
                back_nbrs, _, back_times = net.out_edges(v)
                for w, t_vu in zip(back_nbrs.tolist(), back_times.tolist()):
                    if w == u and t_uv != t_vu:
                        asym += 1
        assert asym > 0

    def test_one_way_fraction_drops_reverse_edges(self):
        full = grid_network(5, 5, seed=3)
        one_way = grid_network(5, 5, seed=3, one_way_fraction=0.5)
        assert one_way.num_edges < full.num_edges

    def test_jitter_and_one_way_apply_without_seed(self):
        # Regression: seed=None used to silently disable both knobs.
        full = grid_network(5, 5)
        net = grid_network(5, 5, speed_jitter=0.4, one_way_fraction=0.5)
        assert net.num_edges < full.num_edges
        assert len(set(net.edge_time.tolist())) > 1

    def test_from_edges_validation(self):
        with pytest.raises(ValueError):
            RoadNetwork.from_edges([(0.0, 0.0)], [(0, 5, 1.0, 1.0)])
        with pytest.raises(ValueError):
            RoadNetwork.from_edges([(0.0, 0.0), (1.0, 0.0)], [(0, 1, -1.0, 1.0)])

    def test_edge_list_round_trip(self, tmp_path):
        net = grid_network(4, 3, spacing=0.7, seed=5, speed_jitter=0.3)
        path = tmp_path / "net.txt"
        save_edge_list(net, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == net.num_nodes
        assert loaded.num_edges == net.num_edges
        assert np.array_equal(loaded.node_x, net.node_x)
        assert np.array_equal(loaded.node_y, net.node_y)
        assert np.array_equal(loaded.indptr, net.indptr)
        assert np.array_equal(loaded.indices, net.indices)
        assert np.array_equal(loaded.edge_length, net.edge_length)
        assert np.array_equal(loaded.edge_time, net.edge_time)

    def test_edge_list_default_time_and_errors(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text(
            "# tiny\nnode 10 0.0 0.0\nnode 20 3.0 4.0\nedge 10 20 5.0\n"
        )
        net = load_edge_list(path, default_speed=2.0)
        assert net.num_nodes == 2
        assert net.edge_time[0] == pytest.approx(2.5)
        bad = tmp_path / "bad.txt"
        bad.write_text("street 1 2\n")
        with pytest.raises(ValueError):
            load_edge_list(bad)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        import networkx as nx

        net = grid_network(6, 5, seed=seed, speed_jitter=0.35, one_way_fraction=0.15)
        graph = _as_nx(net)
        for source in (0, net.num_nodes // 2, net.num_nodes - 1):
            times, lengths = dijkstra_row(net, source)
            reference = nx.single_source_dijkstra_path_length(graph, source, weight="time")
            for v in range(net.num_nodes):
                if v in reference:
                    assert times[v] == pytest.approx(reference[v], abs=1e-12)
                    assert math.isfinite(lengths[v])
                else:
                    assert math.isinf(times[v]) and math.isinf(lengths[v])

    def test_deterministic_rows(self):
        net = grid_network(6, 6, seed=2, speed_jitter=0.3)
        a_t, a_l = dijkstra_row(net, 7)
        b_t, b_l = dijkstra_row(net, 7)
        assert np.array_equal(a_t, b_t)
        assert np.array_equal(a_l, b_l)

    def test_length_follows_fastest_path(self):
        # Two routes 0 -> 2: direct (length 1, slow) and via 1 (length 4,
        # fast).  Time must pick the detour and length must report the
        # detour's length, not the shortest length.
        nodes = [(0.0, 0.0), (1.0, 1.0), (1.0, 0.0)]
        edges = [
            (0, 2, 1.0, 10.0),
            (0, 1, 2.0, 1.0),
            (1, 2, 2.0, 1.0),
        ]
        net = RoadNetwork.from_edges(nodes, edges)
        times, lengths = dijkstra_row(net, 0)
        assert times[2] == pytest.approx(2.0)
        assert lengths[2] == pytest.approx(4.0)

    def test_many_to_many_shapes_and_duplicates(self):
        net = grid_network(4, 4, seed=1)
        times, lengths = many_to_many(net, [0, 3, 0], [1, 2])
        assert times.shape == lengths.shape == (3, 2)
        assert np.array_equal(times[0], times[2])

    def test_invalid_source(self):
        net = grid_network(2, 2)
        with pytest.raises(ValueError):
            dijkstra_row(net, 99)


class TestRoadNetworkTravelModel:
    @pytest.fixture
    def model(self):
        net = grid_network(7, 7, spacing=1.0, speed=1.5, seed=9, speed_jitter=0.3)
        return RoadNetworkTravelModel(net, speed=1.5)

    def test_scalar_vector_identity_via_conformance(self, model):
        # Scalar vs pairwise/legs/single_row/TravelMatrix batteries are the
        # shared conformance checks (the full battery also runs in
        # tests/spatial/test_conformance.py).
        from conformance import check_scalar_vector_identity

        rng = np.random.default_rng(4)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (9, 2))]
        check_scalar_vector_identity(model, points, points)

    def test_times_are_asymmetric_somewhere(self, model):
        rng = np.random.default_rng(12)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (12, 2))]
        assert any(
            model.time(a, b) != model.time(b, a)
            for a in points
            for b in points
            if a != b
        )

    def test_snap_nearest_and_deterministic(self, model):
        rng = np.random.default_rng(3)
        nodes = [model.network.node_point(i) for i in range(model.network.num_nodes)]
        for x, y in rng.uniform(-1, 7, (20, 2)):
            point = Point(float(x), float(y))
            node, access = model.snap(point)
            best = min(euclidean_distance(n, point) for n in nodes)
            assert access == pytest.approx(best)
            assert euclidean_distance(nodes[node], point) == access
            assert model.snap(point) == (node, access)  # cache hit identical

    def test_snap_equidistant_breaks_ties_by_node_id(self):
        net = grid_network(2, 2, spacing=2.0)
        model = RoadNetworkTravelModel(net)
        # Centre of the cell: all four nodes equidistant -> smallest id.
        node, _ = model.snap(Point(1.0, 1.0))
        assert node == 0

    def test_distance_dominates_euclidean(self, model):
        # min_dilation == 1 networks: network distance >= straight line,
        # the property behind the identity reach_bound.
        rng = np.random.default_rng(21)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 6, (10, 2))]
        for a in points:
            for b in points:
                assert model.distance(a, b) >= euclidean_distance(a, b) - 1e-9
        assert model.reach_bound(3.7) == 3.7

    def test_reach_bound_scales_for_shortcut_networks(self):
        # An edge shorter than its straight-line segment (dilation < 1)
        # must widen the Euclidean bound accordingly.
        nodes = [(0.0, 0.0), (4.0, 0.0)]
        edges = [(0, 1, 2.0, 2.0), (1, 0, 2.0, 2.0)]
        net = RoadNetwork.from_edges(nodes, edges)
        model = RoadNetworkTravelModel(net)
        assert net.min_dilation == pytest.approx(0.5)
        assert model.reach_bound(1.0) == pytest.approx(2.0)

    def test_row_cache_hits(self, model):
        model.clear_caches()
        a, b = Point(0.2, 0.3), Point(5.1, 4.2)
        model.time(a, b)
        misses = model.row_cache_misses
        model.time(a, b)
        model.distance(a, b)
        assert model.row_cache_misses == misses
        assert model.row_cache_hits >= 2

    def test_unreachable_pairs_are_infinite(self):
        nodes = [(0.0, 0.0), (10.0, 0.0)]
        net = RoadNetwork.from_edges(nodes, [(0, 1, 10.0, 5.0)])
        model = RoadNetworkTravelModel(net)
        forward = model.time(Point(0.1, 0.0), Point(9.9, 0.0))
        backward = model.time(Point(9.9, 0.0), Point(0.1, 0.0))
        assert math.isfinite(forward)
        assert math.isinf(backward)

    def test_empty_network_rejected(self):
        net = RoadNetwork.from_edges([], [])
        with pytest.raises(ValueError):
            RoadNetworkTravelModel(net)

    def test_zero_length_edge_degrades_reach_bound_to_inf(self):
        # Regression: a zero-length edge between distinct nodes (dilation
        # 0) used to raise ZeroDivisionError at construction; no finite
        # Euclidean bound exists, so the model must degrade to inf.
        nodes = [(0.0, 0.0), (5.0, 0.0)]
        edges = [(0, 1, 0.0, 0.1), (1, 0, 0.0, 0.1)]
        net = RoadNetwork.from_edges(nodes, edges)
        assert net.min_dilation == 0.0
        model = RoadNetworkTravelModel(net)
        assert math.isinf(model.reach_bound(1.0))
        # Planning through an inf bound stays functional (full scans).
        assert model.time(Point(0.0, 0.0), Point(5.0, 0.0)) == pytest.approx(0.1)


class TestRushHourRoadnet:
    """Per-edge-class speed profiles: time-dependent Dijkstra rows."""

    def _model(self, peak=(0.8, 0.4)):
        from repro.roadnet import classify_edges_by_speed
        from repro.spatial.profiles import SpeedProfile

        net = grid_network(6, 6, spacing=1.0, speed=1.0, seed=3, speed_jitter=0.35)
        profiles = tuple(
            SpeedProfile(
                breakpoints=(0.0, 10.0, 20.0), multipliers=(1.0, m, 1.0), period=60.0
            )
            for m in peak
        )
        classes = classify_edges_by_speed(net, len(profiles))
        return RoadNetworkTravelModel(
            net, speed=1.0, edge_profiles=profiles, edge_class=classes
        )

    def test_classify_edges_by_speed_quantiles(self):
        from repro.roadnet import classify_edges_by_speed

        net = grid_network(5, 5, seed=7, speed_jitter=0.4)
        classes = classify_edges_by_speed(net, 2)
        assert classes.shape == (net.num_edges,)
        assert set(classes.tolist()) == {0, 1}
        speed = net.edge_length / net.edge_time
        # The fastest class is genuinely faster on average than the slowest.
        assert speed[classes == 1].mean() > speed[classes == 0].mean()
        # Deterministic and single-class degenerate forms.
        assert np.array_equal(classes, classify_edges_by_speed(net, 2))
        assert (classify_edges_by_speed(net, 1) == 0).all()

    def test_peak_window_slows_travel_and_reverts(self):
        model = self._model()
        a, b = Point(0.3, 0.2), Point(4.6, 3.8)
        model.begin_epoch(0.0)
        off_t, off_d = model.time(a, b), model.distance(a, b)
        model.begin_epoch(15.0)
        peak_t = model.time(a, b)
        assert peak_t > off_t
        model.begin_epoch(25.0)
        assert model.time(a, b) == off_t
        assert model.distance(a, b) == off_d

    def test_fastest_path_may_change_per_window(self):
        # Distances are fastest-path lengths, so deep arterial congestion
        # can reroute some pair somewhere on a jittered grid.
        model = self._model(peak=(1.0, 0.25))
        rng = np.random.default_rng(11)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 5, (14, 2))]
        model.begin_epoch(0.0)
        off = [model.distance(a, b) for a in points for b in points]
        model.begin_epoch(15.0)
        peak = [model.distance(a, b) for a in points for b in points]
        assert off != peak

    def test_rows_keyed_per_window_and_shared_across_cycles(self):
        model = self._model()
        a, b = Point(0.3, 0.2), Point(4.6, 3.8)
        model.clear_caches()
        model.begin_epoch(0.0)
        model.time(a, b)
        cold = model.row_cache_misses
        model.begin_epoch(15.0)   # new window: rows must be recomputed
        model.time(a, b)
        assert model.row_cache_misses > cold
        peak_misses = model.row_cache_misses
        model.begin_epoch(75.0)   # next cycle's peak: same multipliers -> shared rows
        model.time(a, b)
        assert model.row_cache_misses == peak_misses
        model.begin_epoch(60.0)   # next cycle off-peak: shared with window 0
        model.time(a, b)
        assert model.row_cache_misses == peak_misses

    def test_next_profile_boundary_is_min_over_classes(self):
        from repro.spatial.profiles import SpeedProfile

        net = grid_network(3, 3, seed=1)
        profiles = (
            SpeedProfile(breakpoints=(0.0, 30.0), multipliers=(1.0, 0.5), period=100.0),
            SpeedProfile(breakpoints=(0.0, 10.0), multipliers=(1.0, 0.5), period=100.0),
        )
        model = RoadNetworkTravelModel(net, edge_profiles=profiles)
        assert model.next_profile_boundary(0.0) == 10.0
        assert model.next_profile_boundary(10.0) == 30.0
        static = RoadNetworkTravelModel(net)
        assert static.next_profile_boundary(0.0) == float("inf")

    def test_edge_class_validation(self):
        from repro.spatial.profiles import SpeedProfile

        net = grid_network(3, 3, seed=1)
        profile = (SpeedProfile.constant(1.0),)
        with pytest.raises(ValueError):
            RoadNetworkTravelModel(
                net, edge_profiles=profile, edge_class=np.zeros(3, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            RoadNetworkTravelModel(
                net,
                edge_profiles=profile,
                edge_class=np.full(net.num_edges, 5, dtype=np.int64),
            )

    def test_dijkstra_edge_time_override_matches_scaled_network(self):
        net = grid_network(5, 5, seed=13, speed_jitter=0.3)
        scaled = net.edge_time / 0.5
        times, lengths = dijkstra_row(net, 0, edge_time=scaled)
        slow = RoadNetwork(
            node_x=net.node_x,
            node_y=net.node_y,
            indptr=net.indptr,
            indices=net.indices,
            edge_length=net.edge_length,
            edge_time=scaled,
        )
        ref_times, ref_lengths = dijkstra_row(slow, 0)
        assert np.array_equal(times, ref_times)
        assert np.array_equal(lengths, ref_lengths)
        with pytest.raises(ValueError):
            dijkstra_row(net, 0, edge_time=scaled[:-1])
