"""Trace a rush-hour dispatch run and inspect where the time went.

Replays couriers through a congested street grid (per-edge-class
rush-hour speed profiles) with every observability feature armed:

* hierarchical spans over the whole plan pipeline — epoch → plan →
  diff/refresh/decompose → dispatch → per-component search → merge —
  plus journal/checkpoint writes and Dijkstra row computations;
* the process-pool executor, so the trace shows pool-worker search spans
  on their own tracks, parented under the dispatch span that submitted
  them (every component is forced through the pool to make the tracks
  interesting even on small machines);
* streaming metrics: travel-cache hit/miss counters, pool IPC cost
  (pickled bytes, queue wait), replan-latency percentiles per epoch
  class.

The run writes a Trace Event Format file — load it at https://ui.perfetto.dev
or chrome://tracing — validates its span coverage, and renders the
plain-text report the ``repro.obs.report`` CLI produces from the same
file.

Run with::

    python examples/observability_trace.py [trace.json]
"""

from __future__ import annotations

import sys

import repro.assignment.executor as executor_mod
from repro.assignment.planner import PlannerConfig
from repro.assignment.strategies import make_strategy
from repro.datasets.synthetic import WorkloadConfig
from repro.obs import ObservabilityConfig
from repro.obs.report import render_report
from repro.obs.trace import build_span_tree, parse_trace
from repro.resilience.checkpoint import InMemoryCheckpointStore
from repro.resilience.journal import InMemoryJournal
from repro.roadnet import grid_network, roadnet_rushhour
from repro.simulation.platform import PlatformConfig, SCPlatform

#: Spans the trace must cover for the run to count as fully observed.
EXPECTED_SPANS = {
    "epoch",
    "plan",
    "diff",
    "refresh",
    "decompose",
    "dispatch",
    "component.search",
    "merge",
    "journal.append",
    "checkpoint.save",
    "roadnet.dijkstra_row",
}


def main() -> int:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "observability_trace.json"

    # A 10x10 street grid whose arterials drop to 45% speed in the peaks.
    network = grid_network(
        10, 10, spacing=0.4, speed=0.012, seed=7, speed_jitter=0.3,
        name="observed-city",
    )
    workload = roadnet_rushhour(
        network,
        config=WorkloadConfig(
            name="observed-rushhour",
            num_workers=12,
            num_tasks=90,
            horizon=1800.0,
            history_horizon=0.0,
            task_valid_time=120.0,
            reachable_distance=1.5,
            worker_speed=0.012,
            seed=13,
        ),
        num_hotspots=3,
    )

    # Force every component search through the process pool: the inline
    # shortcut would otherwise keep small components on the main track
    # and the example's worker lanes would be empty on a small machine.
    executor_mod.INLINE_MIN_SEQUENCES = 0
    strategy = make_strategy(
        "dta",
        config=PlannerConfig(
            executor="parallel",
            max_workers=2,
            travel_model=workload.instance.travel,
        ),
    )
    journal, checkpoints = InMemoryJournal(), InMemoryCheckpointStore()
    platform = SCPlatform(
        workload.instance,
        strategy,
        PlatformConfig(
            observability=ObservabilityConfig(trace_path=trace_path),
            journal=journal,
            checkpoint_store=checkpoints,
            checkpoint_interval=16,
        ),
    )
    metrics = platform.run()
    print(
        f"Replayed {workload.instance.num_tasks} tasks over "
        f"{workload.instance.num_workers} couriers: "
        f"{metrics.assigned_tasks} assigned in {metrics.replans} replans "
        f"({len(journal)} journal entries, {len(checkpoints)} checkpoints)."
    )

    # ---- validate the written trace ----------------------------------- #
    events = parse_trace(trace_path)
    spans = [e for e in events if e.get("ph") == "X"]
    names = {str(e["name"]) for e in spans}
    missing = EXPECTED_SPANS - names
    if missing:
        print(f"trace is missing expected spans: {sorted(missing)}")
        return 1
    tree = build_span_tree(spans)
    roots = sum(1 for e in spans if e["args"]["parent"] is None)
    resolved = sum(len(node["children"]) for node in tree.values())
    orphans = len(spans) - roots - resolved
    if orphans:
        print(f"{orphans} spans have unresolvable parents")
        return 1
    main_tid = next(
        e["tid"] for e in spans if e["args"]["parent"] is None
    )
    worker_tracks = {e["tid"] for e in spans if e["tid"] != main_tid}
    counter_names = {str(e["name"]) for e in events if e.get("ph") == "C"}
    print(
        f"Trace: {len(events)} events, {len(spans)} spans "
        f"({roots} roots, 0 orphans), pool-worker tracks: "
        f"{sorted(worker_tracks)}, counter tracks: {sorted(counter_names)}."
    )
    if not worker_tracks:
        print("expected pool-worker spans on their own tracks")
        return 1

    # ---- the report the CLI would render from the same file ------------ #
    print()
    print(render_report(events))
    print()
    print(
        f"Wrote {trace_path} — load it at https://ui.perfetto.dev, or run\n"
        f"  python -m repro.obs.report {trace_path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
