"""End-to-end observability over real platform runs.

Three contracts:

* **no-op equivalence** — observability must never influence results:
  :meth:`SimulationMetrics.deterministic_state` is bit-identical with
  observability on and off, on both the serial and the pooled executor;
* **span coverage** — a traced run covers the whole hot path (epoch →
  plan → dispatch → merge, journal/checkpoint writes, pooled component
  searches) and every span's parent resolves;
* **cache instrumentation** — the road-network travel model's row cache
  serves the overwhelming majority of lookups from memory, and the run's
  trace/gauges carry the evidence.
"""

from __future__ import annotations

import os

import pytest

import repro.assignment.executor as executor_mod
from repro.assignment.planner import PlannerConfig
from repro.assignment.strategies import DTAStrategy, make_strategy
from repro.datasets.synthetic import WorkloadConfig
from repro.datasets.yueche import generate_yueche
from repro.obs import ObservabilityConfig
from repro.obs.trace import build_span_tree, parse_trace
from repro.resilience.checkpoint import InMemoryCheckpointStore
from repro.resilience.journal import InMemoryJournal
from repro.roadnet import grid_network, roadnet_workload
from repro.simulation.metrics import EPOCH_CLASSES
from repro.simulation.platform import PlatformConfig, SCPlatform
from repro.simulation.runner import SimulationRunner


@pytest.fixture(scope="module")
def workload():
    return generate_yueche(scale=0.02, seed=3)


def _run(workload, observability=None, planner_kw=None, **platform_kw):
    strategy = DTAStrategy(config=PlannerConfig(**(planner_kw or {})))
    platform = SCPlatform(
        workload.instance,
        strategy,
        PlatformConfig(observability=observability, **platform_kw),
    )
    metrics = platform.run()
    return platform, metrics


class TestNoOpEquivalence:
    def test_serial_state_identical(self, workload):
        _, off = _run(workload)
        _, on = _run(workload, observability=ObservabilityConfig())
        assert on.deterministic_state() == off.deterministic_state()

    def test_parallel_state_identical(self, workload, monkeypatch):
        """Forced pooling: every component through worker processes."""
        monkeypatch.setattr(executor_mod, "INLINE_MIN_SEQUENCES", 0)
        planner_kw = {"executor": "parallel", "max_workers": 2}
        _, serial = _run(workload)
        _, off = _run(workload, planner_kw=planner_kw)
        _, on = _run(
            workload, observability=ObservabilityConfig(), planner_kw=planner_kw
        )
        assert on.deterministic_state() == off.deterministic_state()
        assert on.deterministic_state() == serial.deterministic_state()

    def test_disabled_run_keeps_noop_singleton(self, workload):
        platform, _ = _run(workload)
        assert not platform.obs.enabled
        assert platform.obs.snapshot() == {}


class TestSpanCoverage:
    @pytest.fixture(scope="class")
    def traced(self, workload, tmp_path_factory):
        path = os.fspath(tmp_path_factory.mktemp("trace") / "run.json")
        platform, metrics = _run(
            workload,
            observability=ObservabilityConfig(trace_path=path),
            journal=InMemoryJournal(),
            checkpoint_store=InMemoryCheckpointStore(),
            checkpoint_interval=7,
        )
        return platform, metrics, parse_trace(path)

    def test_hot_path_phases_present(self, traced):
        _, _, events = traced
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert {
            "epoch",
            "plan",
            "dispatch",
            "merge",
            "dispatch_plan",
            "journal.append",
            "checkpoint.save",
        } <= names
        # The incremental engine owns this run's planning epochs.
        assert {"diff", "refresh", "decompose"} <= names

    def test_full_pipeline_spans_without_incremental(self, workload, tmp_path):
        path = os.fspath(tmp_path / "full.json")
        _run(
            workload,
            observability=ObservabilityConfig(trace_path=path),
            planner_kw={"incremental_replan": False},
            max_replans=6,
        )
        names = {e["name"] for e in parse_trace(path) if e.get("ph") == "X"}
        assert {"candidates", "partition", "decompose", "dispatch", "merge"} <= names

    def test_every_parent_resolves(self, traced):
        _, _, events = traced
        spans = [e for e in events if e.get("ph") == "X"]
        tree = build_span_tree(spans)
        resolved = sum(len(node["children"]) for node in tree.values())
        roots = sum(1 for e in spans if e["args"]["parent"] is None)
        assert roots + resolved == len(spans)

    def test_plan_spans_stamped_with_epoch_class(self, traced):
        _, metrics, events = traced
        plan_spans = [
            e for e in events if e.get("ph") == "X" and e["name"] == "plan"
        ]
        classes = [e["args"].get("cls") for e in plan_spans]
        assert classes and all(cls in EPOCH_CLASSES for cls in classes)
        # The first plan has no caches to reuse; later ones do.
        assert classes[0] == "full"
        assert "incremental" in classes
        # Trace and metrics agree on the per-class counts of *counted*
        # epochs (only plans with pending tasks enter the CPU metric).
        counted = [
            e["args"]["cls"] for e in plan_spans if e["args"]["tasks"] > 0
        ]
        by_class = metrics.replan_latency_summary()
        for cls in set(counted):
            assert by_class[cls]["count"] == float(counted.count(cls))

    def test_journal_entries_carry_epoch_class(self, traced):
        platform, _, _ = traced
        entries = list(platform.config.journal.entries())
        assert entries
        assert all(entry.get("cls") in EPOCH_CLASSES for entry in entries)

    def test_report_surfaces_observability(self, workload):
        runner = SimulationRunner(
            workload.instance,
            platform_config=PlatformConfig(observability=ObservabilityConfig()),
        )
        report = runner.run_strategy("dta")
        assert report.observability["phases"]["plan"]["count"] >= 1
        overall = report.replan_latency["overall"]
        assert overall["count"] >= 1
        assert overall["p50"] <= overall["p95"] <= overall["p99"]


class TestRoadnetCacheInstrumentation:
    @pytest.fixture(scope="class")
    def roadnet_run(self, tmp_path_factory):
        network = grid_network(
            10, 10, spacing=0.4, speed=0.012, seed=7, speed_jitter=0.3
        )
        workload = roadnet_workload(
            network,
            config=WorkloadConfig(
                name="roadnet-obs",
                num_workers=12,
                num_tasks=90,
                horizon=1800.0,
                history_horizon=0.0,
                task_valid_time=120.0,
                reachable_distance=1.5,
                seed=13,
            ),
            num_hotspots=3,
        )
        path = os.fspath(tmp_path_factory.mktemp("roadnet") / "trace.json")
        strategy = make_strategy(
            "dta", config=PlannerConfig(travel_model=workload.instance.travel)
        )
        platform = SCPlatform(
            workload.instance,
            strategy,
            PlatformConfig(observability=ObservabilityConfig(trace_path=path)),
        )
        metrics = platform.run()
        return workload, platform, metrics, parse_trace(path)

    def test_row_cache_serves_nearly_all_lookups(self, roadnet_run):
        workload, platform, _, _ = roadnet_run
        stats = workload.instance.travel.cache_stats()
        lookups = stats["row_hits"] + stats["row_misses"]
        assert lookups > 0
        # The paper-scale claim: the per-source Dijkstra row is computed
        # once and then reused for the whole run (~99% hits; ≥95% leaves
        # headroom for tiny workload variations).
        assert stats["row_hits"] / lookups >= 0.95
        # The final gauges exported into the run snapshot agree.
        gauges = platform.obs.snapshot()["gauges"]
        assert gauges["roadnet.row_hits"] == float(stats["row_hits"])
        assert gauges["roadnet.row_misses"] == float(stats["row_misses"])

    def test_trace_carries_dijkstra_spans_and_cache_counters(self, roadnet_run):
        _, _, _, events = roadnet_run
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "roadnet.dijkstra_row" in names
        counters = {e["name"] for e in events if e.get("ph") == "C"}
        assert {"roadnet.row_cache", "roadnet.snap_cache"} <= counters

    def test_assigned_work_with_observability_on(self, roadnet_run):
        _, _, metrics, _ = roadnet_run
        assert metrics.assigned_tasks > 0
