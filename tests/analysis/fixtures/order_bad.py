"""Ordered-iteration fixture: every function leaks set iteration order."""

from typing import Set


def as_list(items: Set[int]):
    return list(items)


def float_total(values: Set[float]):
    return sum(values)


def tied_argmax(candidates: Set[int], score):
    return max(candidates, key=score)


def comprehension(items: Set[int]):
    return [x * 2 for x in items]


def loop_append(items: Set[int]):
    out = []
    for item in items:
        out.append(item)
    return out


def arbitrary(items: Set[int]):
    return next(iter(items))


def joined(names):
    tags = {n.strip() for n in names}
    return ",".join(tags)


def derived_dict_values(items: Set[int]):
    weights = {item: item * 2 for item in items}
    return list(weights.values())
