"""APPNP propagation layer (Eq. 8–9).

Approximate Personalized Propagation of Neural Predictions (Gasteiger et
al., 2019) iterates ``Z^{h+1} = alpha Z^0 + (1 - alpha) A_hat Z^h`` so that a
node's features blend its own prediction with its neighbourhood, with the
restart probability ``alpha`` bounding how far information diffuses.
"""

from __future__ import annotations

from repro import nn
from repro.nn.tensor import Tensor


class APPNP(nn.Module):
    """Personalised-PageRank style propagation over a (learned) graph.

    Parameters
    ----------
    alpha:
        Restart probability; larger values keep features closer to the
        node's own input.
    iterations:
        Number of power-iteration steps ``H``.
    apply_relu:
        Whether to apply the final ReLU of Eq. 9.
    """

    def __init__(self, alpha: float = 0.1, iterations: int = 2, apply_relu: bool = True) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.alpha = alpha
        self.iterations = iterations
        self.apply_relu = apply_relu

    def forward(self, features: Tensor, adjacency: Tensor) -> Tensor:
        """Propagate ``features`` (``(M, F)``) over ``adjacency`` (``(M, M)``)."""
        features = features if isinstance(features, Tensor) else Tensor(features)
        adjacency = adjacency if isinstance(adjacency, Tensor) else Tensor(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        if features.shape[0] != adjacency.shape[0]:
            raise ValueError("features and adjacency disagree on the number of nodes")
        initial = features
        hidden = features
        for _ in range(self.iterations):
            hidden = initial * self.alpha + (adjacency @ hidden) * (1.0 - self.alpha)
        if self.apply_relu:
            hidden = hidden.relu()
        return hidden
