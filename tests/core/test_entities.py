"""Tests for tasks, workers, availability windows and assignments."""

import pytest

from repro.core.assignment import Assignment, WorkerPlan
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import AvailabilityWindow, Worker
from repro.spatial.geometry import Point


class TestTask:
    def test_valid_duration(self):
        task = Task(1, Point(0, 0), publication_time=5.0, expiration_time=45.0)
        assert task.valid_duration == 40.0

    def test_expiration_must_follow_publication(self):
        with pytest.raises(ValueError):
            Task(1, Point(0, 0), publication_time=10.0, expiration_time=10.0)

    def test_availability_window(self):
        task = Task(1, Point(0, 0), publication_time=10.0, expiration_time=20.0)
        assert not task.is_available(5.0)
        assert task.is_available(10.0)
        assert task.is_available(19.9)
        assert not task.is_available(20.0)
        assert task.is_expired(20.0)

    def test_equality_and_hash_by_id(self):
        a = Task(7, Point(0, 0), 0.0, 1.0)
        b = Task(7, Point(5, 5), 0.5, 2.0)
        assert a == b
        assert len({a, b}) == 1

    def test_predicted_flag_not_part_of_equality(self):
        a = Task(7, Point(0, 0), 0.0, 1.0, predicted=True)
        b = Task(7, Point(0, 0), 0.0, 1.0, predicted=False)
        assert a == b


class TestAvailabilityWindow:
    def test_duration_and_contains(self):
        window = AvailabilityWindow(10.0, 20.0)
        assert window.duration == 10.0
        assert window.contains(10.0)
        assert not window.contains(20.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AvailabilityWindow(5.0, 5.0)

    def test_remaining(self):
        window = AvailabilityWindow(10.0, 20.0)
        assert window.remaining(15.0) == 5.0
        assert window.remaining(25.0) == 0.0
        assert window.remaining(0.0) == 10.0

    def test_overlaps(self):
        assert AvailabilityWindow(0, 10).overlaps(AvailabilityWindow(5, 15))
        assert not AvailabilityWindow(0, 10).overlaps(AvailabilityWindow(10, 20))


class TestWorker:
    def test_available_time(self, simple_worker):
        assert simple_worker.available_time == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Worker(1, Point(0, 0), reachable_distance=1.0, on_time=10.0, off_time=5.0)
        with pytest.raises(ValueError):
            Worker(1, Point(0, 0), reachable_distance=0.0, on_time=0.0, off_time=5.0)
        with pytest.raises(ValueError):
            Worker(1, Point(0, 0), reachable_distance=1.0, on_time=0.0, off_time=5.0, speed=0.0)

    def test_windows_must_fit_within_shift(self):
        with pytest.raises(ValueError):
            Worker(
                1, Point(0, 0), 1.0, on_time=0.0, off_time=10.0,
                windows=(AvailabilityWindow(5.0, 20.0),),
            )

    def test_default_availability_is_full_shift(self, simple_worker):
        windows = simple_worker.availability_windows()
        assert len(windows) == 1
        assert windows[0].start == 0.0 and windows[0].end == 100.0

    def test_explicit_windows_control_availability(self):
        worker = Worker(
            1, Point(0, 0), 1.0, on_time=0.0, off_time=100.0,
            windows=(AvailabilityWindow(0.0, 10.0), AvailabilityWindow(50.0, 60.0)),
        )
        assert worker.is_available(5.0)
        assert not worker.is_available(30.0)   # between windows: on a break
        assert worker.is_available(55.0)
        assert not worker.is_available(90.0)

    def test_availability_remaining(self):
        worker = Worker(
            1, Point(0, 0), 1.0, on_time=0.0, off_time=100.0,
            windows=(AvailabilityWindow(0.0, 10.0),),
        )
        assert worker.availability_remaining(4.0) == 6.0
        assert worker.availability_remaining(50.0) == 0.0

    def test_moved_to_preserves_identity(self, simple_worker):
        moved = simple_worker.moved_to(Point(9, 9))
        assert moved.worker_id == simple_worker.worker_id
        assert moved.location == Point(9, 9)
        assert moved == simple_worker  # equality is id-based

    def test_with_windows(self, simple_worker):
        updated = simple_worker.with_windows([AvailabilityWindow(0.0, 50.0)])
        assert updated.availability_windows()[0].end == 50.0


class TestAssignment:
    def test_single_task_assignment_mode(self, simple_worker, nearby_tasks):
        other = Worker(2, Point(5, 5), 5.0, 0.0, 100.0)
        assignment = Assignment()
        assignment.assign(simple_worker, nearby_tasks[:2])
        with pytest.raises(ValueError):
            assignment.assign(other, [nearby_tasks[0]])

    def test_num_assigned_tasks(self, simple_worker, nearby_tasks):
        assignment = Assignment()
        assignment.assign(simple_worker, nearby_tasks)
        assert assignment.num_assigned_tasks == 3
        assert assignment.assigned_tasks == set(nearby_tasks)

    def test_replacing_a_plan_releases_tasks(self, simple_worker, nearby_tasks):
        assignment = Assignment()
        assignment.assign(simple_worker, nearby_tasks[:2])
        assignment.assign(simple_worker, [nearby_tasks[2]])
        assert assignment.num_assigned_tasks == 1
        assert assignment.owner_of(nearby_tasks[0].task_id) is None

    def test_remove_worker(self, simple_worker, nearby_tasks):
        assignment = Assignment()
        assignment.assign(simple_worker, nearby_tasks)
        assignment.remove_worker(simple_worker.worker_id)
        assert assignment.num_assigned_tasks == 0
        assert len(assignment) == 0

    def test_plan_requires_matching_worker(self, simple_worker, nearby_tasks):
        other = Worker(99, Point(0, 0), 1.0, 0.0, 10.0)
        sequence = TaskSequence(other, (nearby_tasks[0],))
        with pytest.raises(ValueError):
            WorkerPlan(simple_worker, sequence)

    def test_summary(self, simple_worker, nearby_tasks):
        assignment = Assignment()
        assignment.assign(simple_worker, nearby_tasks[:2])
        summary = assignment.summary()
        assert summary["assigned_tasks"] == 2.0
        assert summary["max_sequence_length"] == 2.0
