"""Exact search over the partition tree: DFSearch (Algorithm 1) and an
anytime branch-and-bound engine built on the same sub-problem structure.

``dfsearch`` computes, for a partition-tree node, the maximum number of
tasks assignable to the workers of that node and its descendants, trying
every (worker, maximal-valid-sequence) combination and recursing on the
remaining workers and tasks.  Besides the optimum it returns the realising
assignment and, optionally, the ``(state, action, opt)`` experience tuples
used to train the Task Value Function.

``dfsearch_bnb`` solves the identical problem with branch-and-bound
pruning: every sub-problem carries an admissible upper bound (a capped
fractional-matching relaxation over the candidate sequences, evaluated as
bitmask intersections), branches are ordered so the incumbent tightens
early, sequences whose task sets are subsets of an already-explored
sibling — with the sibling's extra tasks invisible to the remaining
workers — are skipped (dominance), and memoisation keys are restricted
to the tasks the remaining workers can actually reference.  On any instance
the plain search solves within budget the two engines return the same
``opt``; under budget exhaustion both degrade to a feasible best-effort
answer, but the branch-and-bound engine reaches the optimum after far
fewer expansions on dense components.

The worst case is exponential; a node budget bounds the explored search
tree and memoisation collapses repeated (workers, tasks) sub-problems, so
both engines degrade gracefully to a best-effort answer on huge clusters.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.assignment.tree import PartitionNode
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker

#: Adaptive-budget scaling: expansions granted per component worker and per
#: candidate sequence.  Dense components solve to proven optimality well
#: under these floors with the branch-and-bound engine (typically a few
#: thousand expansions), while huge flat components get room to finish
#: instead of degrading at a fixed cap sized for yesterday's cost profile.
_BUDGET_PER_WORKER = 2000
_BUDGET_PER_SEQUENCE = 250

#: Expansions between wall-clock deadline checks.  A ``perf_counter`` read
#: costs tens of nanoseconds versus microseconds per expansion, so checking
#: every 64 nodes keeps the overshoot past a deadline in the tens of
#: microseconds while adding well under a percent of search cost.
_DEADLINE_CHECK_INTERVAL = 64

#: Admissible bound kinds for :func:`dfsearch_bnb`.  ``additive`` is the
#: per-worker capped sum; ``lp`` refines it with an exact fractional-
#: matching (bipartite b-matching max-flow) relaxation; ``adaptive``
#: enables the refinement only on *contested* nodes — ones holding a
#: capacity-surplus worker cluster, where the additive bound provably
#: double-counts shared tasks.  Every kind is admissible, so the engine
#: stays exact under all of them.
BOUND_MODES = ("additive", "lp", "adaptive")

#: Work cap of one max-flow bound evaluation, counted in augmenting-path
#: steps.  The flow search is *anytime*: on hitting the cap it abandons the
#: refinement and the caller falls back to the additive bound (a partial
#: flow is a lower bound on the relaxation and would not be admissible).
_FLOW_STEP_LIMIT = 4096

#: Adaptive trigger — see :meth:`_BnBNode.__init__`.  The matching bound
#: can only improve on the additive bound when some worker *cluster* has
#: capacity surplus: a subset whose summed capacities exceed the distinct
#: tasks it references (a Hall-deficiency witness — some capacity provably
#: goes unused, which is exactly what the additive sum double-counts).
#: Dense isotropic components never have one (every worker's pool dwarfs
#: its capacity), and there the flow search is pure per-node overhead, so
#: arming on a mere refs-per-task ratio triples ``bound()`` cost for zero
#: pruning.  The trigger scans workers in ascending pool-size order and
#: arms on the first prefix whose capacity sum exceeds its joint pool.


def _matching_bound(units: List[Tuple[int, int]], limit: int) -> Optional[int]:
    """Exact b-matching max-flow over ``(task mask, capacity)`` units.

    Models the LP relaxation of the component's worker×task structure:
    worker ``w`` may serve at most ``capacity`` tasks, each drawn from its
    ``mask``, and every task serves at most one worker.  The integral
    max-flow equals the LP optimum here (the constraint matrix is totally
    unimodular), upper-bounds any feasible joint selection — a selection
    induces a flow — and never exceeds the additive bound ``limit``.

    Returns ``None`` when the augmenting-path step cap is hit: the partial
    flow is *not* an admissible upper bound, so the caller must fall back
    to the additive value.
    """
    owner: Dict[int, int] = {}  # task bit -> unit index currently serving it
    matched = 0  # mask of matched tasks
    steps = 0
    flow = 0
    for w, (mask, capacity) in enumerate(units):
        for _ in range(capacity):
            # One Kuhn augmentation from ``w``, as an explicit-stack DFS
            # over current task holders; frames are [holder, bits left to
            # scan, entry bit].
            visited = {w}
            stack = [[w, mask, 0]]
            augmented = False
            while stack:
                frame = stack[-1]
                free = units[frame[0]][0] & ~matched
                if free:
                    bit = free & -free
                    matched |= bit
                    owner[bit] = frame[0]
                    # Shift every stolen task one frame up the path.
                    for k in range(len(stack) - 1, 0, -1):
                        owner[stack[k][2]] = stack[k - 1][0]
                    augmented = True
                    break
                bits = frame[1]
                descended = False
                while bits:
                    bit = bits & -bits
                    bits ^= bit
                    frame[1] = bits
                    holder = owner[bit]
                    if holder in visited:
                        continue
                    visited.add(holder)
                    steps += 1
                    if steps > _FLOW_STEP_LIMIT:
                        return None
                    stack.append([holder, units[holder][0], bit])
                    descended = True
                    break
                if not descended:
                    stack.pop()
            if not augmented:
                break  # matched tasks only grow: later tries fail too
            flow += 1
            if flow >= limit:
                return limit
    return flow


def adaptive_node_budget(base: int, num_workers: int, num_sequences: int) -> int:
    """Search budget scaled to the component size (never below ``base``).

    A pure function of the component's worker count and total candidate-
    sequence count, so the full pipeline and the incremental engine — which
    must stay bit-for-bit interchangeable — always derive the identical
    budget for the identical component.
    """
    return max(
        base,
        num_workers * _BUDGET_PER_WORKER,
        num_sequences * _BUDGET_PER_SEQUENCE,
    )


@dataclass
class SearchContext:
    """Shared state of one DFSearch invocation.

    Attributes
    ----------
    sequences_by_worker:
        ``Q_w`` for every worker id (maximal valid task sequences).
    workers_by_id:
        Worker lookup.
    node_budget:
        Maximum number of *true* expansions before falling back to the
        best-found-so-far answer.  Memo hits are free: they replay an
        already-computed sub-problem without exploring anything new, so
        they are tallied in ``memo_hits`` and never charged against the
        budget.
    deadline:
        Absolute ``time.perf_counter()`` instant after which the search
        stops expanding and returns the best anytime answer, checked
        cooperatively every ``_DEADLINE_CHECK_INTERVAL`` expansions (the
        wall-clock twin of ``node_budget``).  ``None`` disables the check
        entirely — the no-deadline path pays nothing.
    collect_experience:
        Whether to record ``(state, action, opt)`` tuples for TVF training.
    """

    sequences_by_worker: Dict[int, List[TaskSequence]]
    workers_by_id: Dict[int, Worker]
    node_budget: int = 20000
    deadline: Optional[float] = None
    collect_experience: bool = False
    nodes_expanded: int = 0
    memo_hits: int = 0
    deadline_hit: bool = False
    # Single fused threshold for the per-expansion stop test: the fast path
    # is one integer compare whether or not a deadline is armed (0 forces
    # the first call through the slow path, so an already-expired deadline
    # is noticed at expansion 0).
    _next_stop_check: int = 0
    experience: List[Tuple[dict, dict, float]] = field(default_factory=list)
    # Memo key: (node identity, pending workers, available tasks).  The
    # node identity is load-bearing: with it omitted, the empty-pending
    # state of *different* tree nodes collides whenever their remaining
    # task sets coincide, replaying one node's children for another's and
    # silently losing assignments (a worker's sequence set is unique to a
    # node, so non-empty pending sets cannot collide — only the empty one
    # could).
    _memo: Dict[
        Tuple[int, FrozenSet[int], FrozenSet[int]],
        Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]],
    ] = field(default_factory=dict)

    def out_of_budget(self) -> bool:
        if self.nodes_expanded < self._next_stop_check:
            return False
        if self.nodes_expanded >= self.node_budget or self.deadline_hit:
            return True
        if self.deadline is not None:
            if _time.perf_counter() >= self.deadline:
                self.deadline_hit = True
                self._next_stop_check = 0  # stay on the slow (True) path
                return True
            self._next_stop_check = min(
                self.node_budget, self.nodes_expanded + _DEADLINE_CHECK_INTERVAL
            )
        else:
            self._next_stop_check = self.node_budget
        return False


@dataclass
class DFSearchResult:
    """Outcome of a DFSearch / branch-and-bound run."""

    opt: int
    selections: List[Tuple[int, Tuple[int, ...]]]
    nodes_expanded: int
    experience: List[Tuple[dict, dict, float]] = field(default_factory=list)
    #: Sub-problems answered from the memo table (not charged to budget).
    memo_hits: int = 0
    #: False when the node budget cut exploration short, i.e. ``opt`` is a
    #: feasible lower bound rather than the proven optimum.
    complete: bool = True
    #: True when a wall-clock deadline (not the node budget) cut the search:
    #: the planner's degradation ladder keys off this to decide whether the
    #: epoch was served by an anytime partial.  Deadline-cut results are
    #: wall-clock-dependent and must never be cached across calls.
    deadline_hit: bool = False

    def as_assignment_map(self) -> Dict[int, Tuple[int, ...]]:
        """Worker id -> tuple of assigned task ids."""
        return {worker_id: task_ids for worker_id, task_ids in self.selections if task_ids}


def _state_snapshot(worker_ids: Sequence[int], task_ids: FrozenSet[int]) -> dict:
    """Compact state description stored in experience tuples."""
    return {
        "num_workers": len(worker_ids),
        "num_tasks": len(task_ids),
        "worker_ids": tuple(sorted(worker_ids)),
        "task_ids": tuple(sorted(task_ids)),
    }


def _action_snapshot(worker: Worker, sequence: TaskSequence) -> dict:
    """Compact action description stored in experience tuples."""
    return {
        "worker_id": worker.worker_id,
        "task_ids": sequence.task_ids,
        "sequence_length": len(sequence),
    }


def _search(
    node: PartitionNode,
    task_ids: FrozenSet[int],
    pending_workers: Tuple[int, ...],
    context: SearchContext,
) -> Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]:
    """Recursive core of Algorithm 1.

    ``pending_workers`` are the workers of ``node`` not yet decided; when it
    is empty the search recurses into the children, whose sub-problems are
    independent of each other by construction of the partition tree.
    """
    memo_key = (id(node), frozenset(pending_workers), task_ids)
    cached = context._memo.get(memo_key) if not context.collect_experience else None
    if cached is not None:
        context.memo_hits += 1
        return cached
    context.nodes_expanded += 1

    if not pending_workers:
        total = 0
        selections: List[Tuple[int, Tuple[int, ...]]] = []
        remaining = task_ids
        for child in node.children:
            child_opt, child_sel = _search(child, remaining, tuple(child.workers), context)
            total += child_opt
            selections.extend(child_sel)
            used = {tid for _, tids in child_sel for tid in tids}
            remaining = remaining - frozenset(used)
        result = (total, tuple(selections))
        if not context.collect_experience:
            context._memo[memo_key] = result
        return result

    worker_id, *rest = pending_workers
    rest_tuple = tuple(rest)
    worker = context.workers_by_id[worker_id]
    candidate_sequences = context.sequences_by_worker.get(worker_id, [])

    # Option 0: assign this worker nothing.
    best_opt, best_selection = _search(node, task_ids, rest_tuple, context)
    best_selection = ((worker_id, ()),) + best_selection

    if not context.out_of_budget():
        for sequence in candidate_sequences:
            sequence_ids = sequence.task_id_set
            if not sequence_ids or not sequence_ids <= task_ids:
                continue
            sub_opt, sub_selection = _search(node, task_ids - sequence_ids, rest_tuple, context)
            value = sub_opt + len(sequence_ids)
            if context.collect_experience:
                descendant = node.descendant_workers()
                state = _state_snapshot(list(pending_workers) + descendant, task_ids)
                action = _action_snapshot(worker, sequence)
                context.experience.append((state, action, float(value)))
            if value > best_opt:
                best_opt = value
                best_selection = ((worker_id, sequence.task_ids),) + sub_selection
            if context.out_of_budget():
                break

    result = (best_opt, best_selection)
    if not context.collect_experience:
        context._memo[memo_key] = result
    return result


def dfsearch(
    node: PartitionNode,
    tasks: Optional[Sequence[Task]],
    sequences_by_worker: Dict[int, List[TaskSequence]],
    workers_by_id: Dict[int, Worker],
    node_budget: int = 20000,
    collect_experience: bool = False,
    deadline: Optional[float] = None,
    available_ids: Optional[FrozenSet[int]] = None,
) -> DFSearchResult:
    """Run Algorithm 1 on a partition-tree node.

    Parameters
    ----------
    node:
        Root of the (sub)tree to search.
    tasks:
        Currently unassigned tasks available to this sub-problem.  The
        search only ever reads their ids; pass ``available_ids`` instead
        (with ``tasks=None``) to make the call a pure function of plain
        picklable data — the form :mod:`repro.assignment.executor` ships
        across process boundaries.
    sequences_by_worker:
        Pre-computed ``Q_w`` for every worker appearing in the tree.
    workers_by_id:
        Worker lookup table.
    node_budget:
        Limit on recursive expansions (graceful degradation on huge nodes).
    collect_experience:
        Record ``(state, action, opt)`` tuples for TVF training; disables
        memoisation so every visited state is recorded with its true value.
    deadline:
        Absolute ``time.perf_counter()`` cutoff; on expiry the best
        anytime answer found so far is returned with ``deadline_hit`` set.
    available_ids:
        Task ids available to this sub-problem; overrides ``tasks``.
    """
    context = SearchContext(
        sequences_by_worker=sequences_by_worker,
        workers_by_id=workers_by_id,
        node_budget=node_budget,
        deadline=deadline,
        collect_experience=collect_experience,
    )
    task_ids = (
        frozenset(available_ids)
        if available_ids is not None
        else frozenset(task.task_id for task in tasks)
    )
    opt, selections = _search(node, task_ids, tuple(node.workers), context)
    return DFSearchResult(
        opt=opt,
        selections=[sel for sel in selections],
        nodes_expanded=context.nodes_expanded,
        experience=context.experience,
        memo_hits=context.memo_hits,
        complete=not context.out_of_budget(),
        deadline_hit=context.deadline_hit,
    )


# --------------------------------------------------------------------- #
# Branch-and-bound engine
# --------------------------------------------------------------------- #


class _BnBNode:
    """Per-tree-node search structures, precomputed once per invocation.

    Task sets live as bitmasks over the tasks actually referenced by some
    candidate sequence of this tree (its *universe*) — intersection,
    containment and cardinality are then single big-int operations over
    the arrays cached when the sequences were enumerated.
    """

    __slots__ = (
        "key",
        "children",
        "worker_ids",
        "desc_worker_ids",
        "candidates",
        "own_bounds",
        "desc_bounds",
        "all_bounds",
        "rel_from",
        "empty_tail",
        "lp_active",
    )

    def __init__(
        self,
        node: PartitionNode,
        bit_of: Dict[int, int],
        sequences_by_worker: Dict[int, List[TaskSequence]],
        counter: List[int],
        bound_mode: str = "additive",
    ) -> None:
        self.key = counter[0]
        counter[0] += 1
        self.children = [
            _BnBNode(child, bit_of, sequences_by_worker, counter, bound_mode)
            for child in node.children
        ]
        self.worker_ids = list(node.workers)

        #: candidates[i] — this node's i-th worker's usable sequences as
        #: (mask, length, task_id_tuple), longest first so the incumbent
        #: tightens early and the suffix-bound cut can break the loop.
        self.candidates = []
        #: own_bounds[i] — (union mask, longest length) per worker: the
        #: per-worker term of the relaxation bound.
        self.own_bounds = []
        for worker_id in self.worker_ids:
            cands = []
            union = 0
            longest = 0
            for sequence in sequences_by_worker.get(worker_id, []):
                ids = sequence.task_ids
                if not ids or any(tid not in bit_of for tid in ids):
                    continue  # references a task outside this sub-problem
                mask = 0
                for tid in ids:
                    mask |= 1 << bit_of[tid]
                cands.append((mask, len(ids), ids))
                union |= mask
                if len(ids) > longest:
                    longest = len(ids)
            cands.sort(key=lambda item: -item[1])  # stable: keeps Q_w rank
            self.candidates.append(cands)
            self.own_bounds.append((union, longest))

        #: Flattened (union mask, longest) of every descendant worker, and
        #: the matching flattened descendant worker ids (experience states).
        self.desc_bounds = []
        self.desc_worker_ids = []
        for child in self.children:
            self.desc_bounds.extend(child.own_bounds)
            self.desc_bounds.extend(child.desc_bounds)
            self.desc_worker_ids.extend(child.worker_ids)
            self.desc_worker_ids.extend(child.desc_worker_ids)

        #: rel_from[i] — union mask of every task referenced by workers
        #: i.. of this node plus all descendants: the only tasks the
        #: remaining sub-problem can read, hence a sound memo-key filter.
        descendant_rel = 0
        for union, _ in self.desc_bounds:
            descendant_rel |= union
        rel = [descendant_rel]
        for union, _ in reversed(self.own_bounds):
            rel.append(rel[-1] | union)
        rel.reverse()
        self.rel_from = rel

        #: Concatenated (union, longest) of this node's workers then every
        #: descendant — ``bound(i)`` scans ``all_bounds[i:]``, the exact
        #: order the two legacy loops visited.
        self.all_bounds = self.own_bounds + self.desc_bounds

        #: Whether :meth:`bound` refines the additive value with the exact
        #: fractional-matching max-flow.  Decided per tree node: ``lp``
        #: forces it, ``adaptive`` enables it only when the group holds a
        #: capacity-surplus cluster — some workers-in-ascending-pool-order
        #: prefix whose capacities sum past its joint task pool — the
        #: Hall-deficiency structure where the additive bound provably
        #: double-counts.  Without one (dense isotropic components) the
        #: flow equals the additive value and would be pure overhead.
        if bound_mode == "lp":
            self.lp_active = sum(1 for union, _ in self.all_bounds if union) >= 2
        elif bound_mode == "adaptive":
            pools = sorted(
                (union.bit_count(), union, longest)
                for union, longest in self.all_bounds
                if union
            )
            cap_sum = 0
            joint = 0
            self.lp_active = False
            for pool_size, union, longest in pools:
                cap_sum += longest if longest < pool_size else pool_size
                joint |= union
                # A one-worker prefix can never trigger: its capacity is
                # clamped to its own pool size.
                if cap_sum > joint.bit_count():
                    self.lp_active = True
                    break
        else:
            self.lp_active = False

        #: empty_tail[i:] — the all-unassigned selection tuple for workers
        #: i.. plus every descendant in preorder (the legacy layout).
        tail: List[Tuple[int, Tuple[int, ...]]] = [
            (worker_id, ()) for worker_id in self.worker_ids
        ]
        for child in self.children:
            tail.extend(child.empty_tail)
        self.empty_tail = tuple(tail)

    def bound(self, i: int, available: int) -> int:
        """Admissible upper bound on tasks assignable by workers ``i..``
        of this node plus all descendants, given the ``available`` mask.

        Additive relaxation: every undecided worker contributes at most
        ``min(longest candidate, |union ∩ available|)`` (each cap is
        individually admissible), and the total can never exceed the
        number of distinct available tasks the group references.  The
        per-worker scan short-circuits at that cap.

        With :attr:`lp_active` the additive value is refined by the exact
        fractional-matching max-flow over the same ``(union ∩ available,
        capacity)`` structure, which never double-counts a shared task.
        The bound is **recomputed from scratch for every** ``(i,
        available)`` **with the node's active kind** — an additive value
        must never stand in for an LP call site (or vice versa) once a
        caller has used it to size a suffix cut, and both kinds are
        monotone in ``available``, which is what makes the suffix cuts
        sound.  On a step-cap abort the flow search discards its partial
        flow (a lower bound of the relaxation, inadmissible) and the
        additive value stands.
        """
        cap = (available & self.rel_from[i]).bit_count()
        if cap == 0:
            return 0
        bounds = self.all_bounds
        if not self.lp_active:
            total = 0
            for j in range(i, len(bounds)):
                union, longest = bounds[j]
                overlap = (union & available).bit_count()
                if overlap:
                    total += overlap if overlap < longest else longest
                    if total >= cap:
                        return cap
            return total
        # LP path: the additive scan runs without the cap short-circuit so
        # the flow search sees every undecided worker's unit.
        total = 0
        units: List[Tuple[int, int]] = []
        for j in range(i, len(bounds)):
            union, longest = bounds[j]
            overlap_mask = union & available
            if overlap_mask:
                overlap = overlap_mask.bit_count()
                capacity = overlap if overlap < longest else longest
                total += capacity
                units.append((overlap_mask, capacity))
        if total >= cap:
            total = cap
        if len(units) < 2:
            return total  # a single worker's capped term is already exact
        flow = _matching_bound(units, total)
        return total if flow is None else flow


class _BnBContext:
    """Mutable state of one branch-and-bound invocation."""

    __slots__ = (
        "bit_mask",
        "node_budget",
        "deadline",
        "deadline_hit",
        "_next_stop_check",
        "nodes_expanded",
        "memo_hits",
        "memo",
        "collect_experience",
        "experience",
        "universe_tids",
        "extra_tids",
    )

    def __init__(
        self,
        bit_mask: Dict[int, int],
        node_budget: int,
        deadline: Optional[float] = None,
    ) -> None:
        self.bit_mask = bit_mask
        self.node_budget = node_budget
        self.deadline = deadline
        self.deadline_hit = False
        self._next_stop_check = 0
        self.nodes_expanded = 0
        self.memo_hits = 0
        # (node key, worker index, relevant available mask) -> (opt, sel).
        # Only *completed* sub-problems are stored, so a memo entry is
        # always the proven optimum of its sub-problem regardless of the
        # incumbent state it was computed under.
        self.memo: Dict[
            Tuple[int, int, int], Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]
        ] = {}
        #: TVF experience collection from the *explored* sub-problems.
        #: Unlike the plain search (which disables memoisation to record
        #: every visited state), the branch-and-bound engine keeps its
        #: pruning on — the recorded tuples are exactly the branches it had
        #: to evaluate, which makes experience collection dramatically
        #: cheaper on dense components at the cost of a sparser sample.
        self.collect_experience = False
        self.experience: List[Tuple[dict, dict, float]] = []
        #: Bit position -> task id (ascending, so mask iteration yields
        #: sorted ids) and the available-but-unreferenced task ids that the
        #: plain search would carry in every state snapshot.
        self.universe_tids: List[int] = []
        self.extra_tids: Tuple[int, ...] = ()

    def exhausted(self) -> bool:
        """Budget or wall-clock cutoff reached (same contract as
        :meth:`SearchContext.out_of_budget`; the deadline is polled every
        ``_DEADLINE_CHECK_INTERVAL`` expansions, and the fast path is a
        single integer compare whether or not a deadline is armed)."""
        if self.nodes_expanded < self._next_stop_check:
            return False
        if self.nodes_expanded >= self.node_budget or self.deadline_hit:
            return True
        if self.deadline is not None:
            if _time.perf_counter() >= self.deadline:
                self.deadline_hit = True
                self._next_stop_check = 0  # stay on the slow (True) path
                return True
            self._next_stop_check = min(
                self.node_budget, self.nodes_expanded + _DEADLINE_CHECK_INTERVAL
            )
        else:
            self._next_stop_check = self.node_budget
        return False

    def mask_task_ids(self, mask: int) -> List[int]:
        """Task ids of a universe bitmask, in ascending id order."""
        ids: List[int] = []
        tids = self.universe_tids
        bits = mask
        while bits:
            ids.append(tids[(bits & -bits).bit_length() - 1])
            bits &= bits - 1
        return ids


def _bnb_children(
    info: _BnBNode, available: int, context: _BnBContext
) -> Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...], bool]:
    """Solve a node's children sequentially (the empty-pending state)."""
    if not info.children:
        return 0, (), True
    key = (info.key, len(info.worker_ids), available & info.rel_from[-1])
    cached = context.memo.get(key)
    if cached is not None:
        context.memo_hits += 1
        return cached[0], cached[1], True
    if context.exhausted():
        return 0, info.empty_tail[len(info.worker_ids):], False
    context.nodes_expanded += 1
    total = 0
    selections: List[Tuple[int, Tuple[int, ...]]] = []
    remaining = available
    complete = True
    bit_mask = context.bit_mask
    for child in info.children:
        child_opt, child_sel, child_complete = _bnb_solve(child, 0, remaining, context)
        total += child_opt
        selections.extend(child_sel)
        complete = complete and child_complete
        for _, task_ids in child_sel:
            for tid in task_ids:
                remaining &= ~bit_mask[tid]
    result = (total, tuple(selections))
    if complete:
        context.memo[key] = result
    return result[0], result[1], complete


def _bnb_solve(
    info: _BnBNode, i: int, available: int, context: _BnBContext
) -> Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...], bool]:
    """Branch-and-bound over worker ``i`` of ``info`` (then ``i+1``…).

    Returns ``(opt, selections, complete)`` where ``complete`` is False
    iff the budget cut exploration somewhere below (in which case ``opt``
    is still a feasible lower bound and the selections reuse no task).
    """
    if i == len(info.worker_ids):
        return _bnb_children(info, available, context)

    key = (info.key, i, available & info.rel_from[i])
    cached = context.memo.get(key)
    if cached is not None:
        context.memo_hits += 1
        return cached[0], cached[1], True
    if context.exhausted():
        return 0, info.empty_tail[i:], False
    context.nodes_expanded += 1

    upper = info.bound(i, available)
    if upper == 0:
        result = (0, info.empty_tail[i:])
        context.memo[key] = result
        return 0, result[1], True

    worker_id = info.worker_ids[i]
    rest_rel = info.rel_from[i + 1]
    rest_upper = info.bound(i + 1, available)
    best_opt = -1
    best_selection: Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]] = None
    complete = True
    tried: List[int] = []
    for mask, length, task_ids in info.candidates[i]:
        if best_opt >= upper:
            break  # incumbent met the sub-problem bound: proven optimal
        if length + rest_upper <= best_opt:
            break  # longest-first order: every later candidate bounds lower
        if mask & ~available:
            continue  # not fully available
        # Dominance: a sequence whose task set is a subset of an explored
        # sibling's is skippable only when the sibling's extra tasks are
        # invisible to the remaining sub-problem — then both branches
        # leave the rest the same effective task pool and the longer
        # sibling's value is an upper bound.  (An unconditional subset
        # rule would be unsound: freeing a contested task can unlock a
        # longer sequence elsewhere, outweighing this worker's loss.)
        dominated = False
        for tried_mask in tried:
            if mask & ~tried_mask == 0 and (tried_mask & ~mask) & rest_rel == 0:
                dominated = True
                break
        if dominated:
            continue
        sub_opt, sub_sel, sub_complete = _bnb_solve(info, i + 1, available & ~mask, context)
        complete = complete and sub_complete
        tried.append(mask)
        value = length + sub_opt
        if context.collect_experience:
            pending = list(info.worker_ids[i:]) + info.desc_worker_ids
            remaining = sorted(
                context.mask_task_ids(available) + list(context.extra_tids)
            )
            context.experience.append(
                (
                    _state_snapshot(pending, remaining),
                    {
                        "worker_id": worker_id,
                        "task_ids": task_ids,
                        "sequence_length": length,
                    },
                    float(value),
                )
            )
        if value > best_opt:
            best_opt = value
            best_selection = ((worker_id, task_ids),) + sub_sel
        if context.exhausted():
            complete = False
            break
    # Option 0 (assign nothing) — skipped when the rest-of-problem bound
    # proves it cannot beat the incumbent.
    if best_selection is None or (best_opt < upper and rest_upper > best_opt):
        sub_opt, sub_sel, sub_complete = _bnb_solve(info, i + 1, available, context)
        complete = complete and sub_complete
        if sub_opt > best_opt or best_selection is None:
            best_opt = sub_opt
            best_selection = ((worker_id, ()),) + sub_sel
    result = (best_opt, best_selection)
    if complete:
        context.memo[key] = result
    return best_opt, best_selection, complete


def dfsearch_bnb(
    node: PartitionNode,
    tasks: Optional[Sequence[Task]],
    sequences_by_worker: Dict[int, List[TaskSequence]],
    workers_by_id: Dict[int, Worker],
    node_budget: int = 20000,
    collect_experience: bool = False,
    deadline: Optional[float] = None,
    available_ids: Optional[FrozenSet[int]] = None,
    bound_mode: str = "adaptive",
) -> DFSearchResult:
    """Anytime branch-and-bound equivalent of :func:`dfsearch`.

    ``bound_mode`` selects the admissible bound (see :data:`BOUND_MODES`):
    the per-worker ``additive`` relaxation, the fractional-matching ``lp``
    refinement, or ``adaptive`` (the default), which pays for the flow
    search only on contested nodes.  The mode changes how much is pruned —
    ``nodes_expanded`` and the tie-broken selections may differ — but
    never the optimality guarantees below, which hold for every kind.

    Guarantees, for the same inputs:

    * **identical ``opt``** whenever the plain search completes within its
      budget (the bound is admissible and the dominance rule only skips
      sequences provably no better than an explored sibling);
    * a **feasible** answer always — selections are drawn from ``Q_w``
      and no task is assigned twice, even under budget exhaustion;
    * like the plain search, the result depends only on the tree shape,
      the workers' sequence id-sets and the availability of the
      referenced task ids — never on ``now`` — so component results stay
      replayable by the incremental engine.

    With ``collect_experience`` the engine records a ``(state, action,
    value)`` tuple for every branch it actually evaluates — the explored
    sub-problems.  Pruning and memoisation stay on, so the sample is
    sparser than the plain search's exhaustive trace but costs orders of
    magnitude fewer expansions on dense components; recorded values are
    the achieved values of the explored branches, identical in meaning to
    the plain search's tuples.

    Like :func:`dfsearch`, the engine only reads task *ids*: passing
    ``available_ids`` (with ``tasks=None``) yields the same result from
    plain picklable data.
    """
    if bound_mode not in BOUND_MODES:
        raise ValueError(
            f"bound_mode must be one of {BOUND_MODES}, got {bound_mode!r}"
        )
    if available_ids is None:
        available_ids = {task.task_id for task in tasks}

    # Universe: available tasks actually referenced by some sequence of a
    # tree worker, in sorted id order for a deterministic bit layout.
    referenced: set = set()
    for worker_id in node.all_workers():
        for sequence in sequences_by_worker.get(worker_id, []):
            ids = sequence.task_id_set
            if ids and ids <= available_ids:
                referenced.update(ids)
    bit_of = {tid: i for i, tid in enumerate(sorted(referenced))}
    bit_mask = {tid: 1 << i for tid, i in bit_of.items()}

    counter = [0]
    info = _BnBNode(node, bit_of, sequences_by_worker, counter, bound_mode)
    context = _BnBContext(bit_mask, node_budget, deadline=deadline)
    if collect_experience:
        context.collect_experience = True
        context.universe_tids = sorted(referenced)
        context.extra_tids = tuple(sorted(available_ids - referenced))
    available = (1 << len(bit_of)) - 1
    opt, selections, complete = _bnb_solve(info, 0, available, context)
    return DFSearchResult(
        opt=opt,
        selections=list(selections),
        nodes_expanded=context.nodes_expanded,
        experience=context.experience,
        memo_hits=context.memo_hits,
        complete=complete,
        deadline_hit=context.deadline_hit,
    )


def collect_training_experience(
    node: PartitionNode,
    tasks: Sequence[Task],
    sequences_by_worker: Dict[int, List[TaskSequence]],
    workers_by_id: Dict[int, Worker],
    node_budget: int = 20000,
) -> List[Tuple[dict, dict, float]]:
    """Convenience wrapper returning only the experience tuples ``U``."""
    result = dfsearch(
        node,
        tasks,
        sequences_by_worker,
        workers_by_id,
        node_budget=node_budget,
        collect_experience=True,
    )
    return result.experience
