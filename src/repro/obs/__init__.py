"""``repro.obs``: tracing spans, streaming metrics, profiling hooks.

Three stdlib-only layers behind one per-run handle:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  log-scale :class:`StreamingHistogram`\\ s (p50/p95/p99 without
  retaining samples);
* :class:`Tracer` — hierarchical spans over the plan pipeline, exported
  as Trace Event Format loadable in Perfetto / chrome://tracing
  (``python -m repro.obs.report`` renders a text report from the file);
* :func:`configure_logging` — the one entry point of the namespaced
  ``repro.*`` logging hierarchy.

Enable per run via ``PlatformConfig.observability =
ObservabilityConfig(...)``; the default (``None``) keeps every hot path
on the no-op-cheap :data:`OBS_DISABLED` singleton.
"""

from repro.obs.logconfig import configure_logging
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.runtime import OBS_DISABLED, Observability, ObservabilityConfig
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    build_span_tree,
    parse_trace,
    span_event,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "Observability",
    "ObservabilityConfig",
    "OBS_DISABLED",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_event",
    "parse_trace",
    "build_span_tree",
    "configure_logging",
]
