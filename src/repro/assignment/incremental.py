"""Incremental replanning: reuse every untouched piece of the TPA pipeline.

Algorithm 3 replans at every arrival event, yet a single event usually
changes exactly one worker or one task.  The full pipeline nevertheless
recomputes reachable sets, maximal sequences, the dependency partition and
the per-component search for *every* worker at *every* decision point —
O(|W|·|T|) and worse.  This engine caches all four stages between epochs
and recomputes only the dirty region, exploiting three structural facts:

* **Monotone time predicates.**  For a fixed worker/task pair every
  reachability and sequence-validity predicate has the form
  ``now + legs < bound`` with ``legs`` and ``bound`` time-invariant, so a
  true predicate can only flip false, and does so at a computable boundary.
  A worker's reachable set and maximal-sequence set therefore stay
  *literally identical* until the minimum such boundary — the horizons
  reported by :func:`~repro.assignment.reachability.
  reachable_tasks_with_horizon` and :func:`~repro.assignment.sequences.
  maximal_valid_sequences`.  Time-dependent travel models hold ``legs``
  constant only inside one speed-profile window, so those horizons are
  additionally clamped to the model's ``next_profile_boundary`` and the
  engine re-latches the window via ``begin_epoch(now)`` at every call —
  inside a window the model is literally static, and at a boundary
  everything stale is recomputed.
* **Geometric locality.**  A task can enter a worker's reachable set only
  from inside the Euclidean ball covering ``(hops + 1)`` reach-length
  travel legs around the worker — the travel model's
  :meth:`~repro.spatial.travel.TravelModel.reach_bound` converts the
  travel-distance budget into that Euclidean radius (identity for the
  built-in models; a dilation-corrected radius for road networks; models
  without a usable bound return ``inf`` and fall back to dirtying every
  worker, which is always sound).  So a task arrival dirties only
  geometrically nearby workers, and a task removal dirties only the
  workers whose uncapped reachable set contained it.
* **Time-free search.**  The exact DFSearch outcome of a partition
  component depends only on the component's tree, its workers' sequence
  id-sets and the availability of the referenced task ids — never on
  ``now`` or on tasks outside those sequences — so an untouched component
  replays its previous selections (and node counts) verbatim.  The
  TVF-guided search additionally reads global snapshot statistics, so
  guided components are reused only while the active task set is unchanged.

Equivalence contract: for any sequence of ``plan()`` calls with
non-decreasing ``now``, the engine returns bit-for-bit the outcome the full
pipeline would produce for each call in isolation — same selections in the
same order, same planned-task and component counts, same nodes-expanded
diagnostics.  ``tests/assignment/test_vectorized_equivalence.py`` asserts
this on randomized snapshot streams and full platform replays.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.assignment.dfsearch import adaptive_node_budget
from repro.assignment.executor import ComponentJob
from repro.assignment.fast_partition import (
    build_adjacency,
    build_component_subtree,
    connected_components,
)
from repro.assignment.reachability import (
    VECTOR_MIN_TASKS,
    reachable_tasks_with_horizon,
)
from repro.assignment.sequences import maximal_valid_sequences
from repro.assignment.tree import PartitionNode
from repro.core.assignment import Assignment, WorkerPlan
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.geometry import euclidean_distance
from repro.spatial.travel_matrix import TravelMatrix

#: Transitive-expansion rounds of the planner's reachability (its default).
_HOPS = 1

#: Component-cache housekeeping: once the cache outgrows the size bound,
#: entries not referenced for the TTL (in epochs) are dropped.
_COMPONENT_CACHE_MAX = 4096
_COMPONENT_CACHE_TTL = 64

#: Self-healing diagnostics (invariant violations and cache repairs).
#: Child of ``repro.resilience`` so resilience-wide log configuration
#: (and the chaos-test captures pinned to that name) still applies.
_LOG = logging.getLogger("repro.resilience.selfheal")


@dataclass
class DirtySet:
    """Ids of workers / tasks that changed since the last planning call.

    The platform (and the adaptive assigner) tag every decision point with
    the entities mutated since the previous plan — arrivals, expiries,
    dispatches, repositioning moves, offline transitions — and hand the set
    to the strategy before asking for a plan.  The incremental engine
    treats hinted ids as *forced dirty*: hints can only widen the recompute
    region, never narrow it, so stale or over-complete hints are harmless;
    the engine's own snapshot diff remains the correctness backstop.
    """

    worker_ids: Set[int] = field(default_factory=set)
    task_ids: Set[int] = field(default_factory=set)

    def note_worker(self, worker_id: int) -> None:
        self.worker_ids.add(worker_id)

    def note_task(self, task_id: int) -> None:
        self.task_ids.add(task_id)

    def merge(self, other: "DirtySet") -> None:
        self.worker_ids.update(other.worker_ids)
        self.task_ids.update(other.task_ids)

    def clear(self) -> None:
        self.worker_ids.clear()
        self.task_ids.clear()

    def __bool__(self) -> bool:
        return bool(self.worker_ids or self.task_ids)


def _worker_fingerprint(worker: Worker) -> tuple:
    """Every worker attribute any pipeline stage reads."""
    return (
        worker.location.x,
        worker.location.y,
        worker.reachable_distance,
        worker.on_time,
        worker.off_time,
        worker.speed,
        worker.windows,
    )


def _worker_unchanged(fingerprint: tuple, worker: Worker) -> bool:
    """``fingerprint == _worker_fingerprint(worker)`` without building the
    tuple — the steady-state path compares every worker every epoch, and
    the 7-tuple allocation per (worker, epoch) was pure garbage-collector
    load.  Field order must mirror :func:`_worker_fingerprint`."""
    location = worker.location
    return (
        fingerprint[0] == location.x
        and fingerprint[1] == location.y
        and fingerprint[2] == worker.reachable_distance
        and fingerprint[3] == worker.on_time
        and fingerprint[4] == worker.off_time
        and fingerprint[5] == worker.speed
        and fingerprint[6] == worker.windows
    )


def _task_fingerprint(task: Task) -> tuple:
    """Every task attribute any pipeline stage reads."""
    return (
        task.location.x,
        task.location.y,
        task.publication_time,
        task.expiration_time,
        task.predicted,
    )


def _task_unchanged(fingerprint: tuple, task: Task) -> bool:
    """Allocation-free twin of ``fingerprint == _task_fingerprint(task)``
    (same contract as :func:`_worker_unchanged`)."""
    location = task.location
    return (
        fingerprint[0] == location.x
        and fingerprint[1] == location.y
        and fingerprint[2] == task.publication_time
        and fingerprint[3] == task.expiration_time
        and fingerprint[4] == task.predicted
    )


@dataclass
class _WorkerEntry:
    """Cached per-worker pipeline state (reachability + sequences)."""

    fingerprint: tuple
    #: Capped reachable set — exactly what the full pipeline feeds the
    #: sequence enumerator and the dependency graph.
    reachable: List[Task]
    reachable_ids: Tuple[int, ...]
    #: Uncapped reachable ids: every task whose *presence* influences the
    #: output (hop anchors included); a removal inside this set dirties the
    #: worker even when the removed task was cut by the distance cap.
    uncapped_ids: FrozenSet[int]
    reach_horizon: float
    sequences: List[TaskSequence]
    seq_tuples: Tuple[Tuple[int, ...], ...]
    #: ``seq_tuples`` as a frozenset, kept in lockstep: the self-check
    #: probes candidate membership once per planned worker per epoch, and
    #: the linear tuple scan was measurable at platform scale.
    seq_set: FrozenSet[Tuple[int, ...]]
    seq_horizon: float
    #: True when the reachable set came from the predicted-task fallback
    #: (empty real reachable set with predicted tasks in the snapshot).
    fallback: bool
    #: Bumped whenever the worker's plan-relevant state changes (location /
    #: window fingerprint, reachable ids, or sequence id-tuples).
    version: int
    #: Last epoch this worker appeared in a snapshot (drives eviction of
    #: permanently departed workers; returning workers are re-dirtied by
    #: the ``_last_present`` rule regardless).
    last_seen: int = 0


@dataclass
class _ComponentEntry:
    """Cached search result of one dependency component."""

    versions: Dict[int, int]
    selections: Tuple[Tuple[int, Tuple[int, ...]], ...]
    nodes_expanded: int
    #: Which engine produced the cached result — ``"tvf"``, ``"exact"`` or
    #: ``"bnb"``.  The engines agree on ``opt`` within budget but not on
    #: tie-breaks or node counts, so a cached selection is replayed only
    #: for the engine that produced it (the context key also covers the
    #: configured search mode; this field keeps each entry self-describing
    #: and bit-for-bit replayable on its own).
    mode: str
    #: Guided (TVF) searches read global snapshot statistics, so their
    #: results are reusable only while the active task set is unchanged.
    task_epoch: int
    last_used: int


class IncrementalPlanEngine:
    """Dirty-region replanning layered under :class:`TaskPlanner`.

    The engine owns no policy: thresholds, caps and search configuration
    all come from the planner it serves, and each stage recomputes through
    the same (equivalence-tested) primitives the full pipeline uses, so a
    recomputed region is bit-identical to a full replan by construction and
    a reused region is bit-identical by the monotonicity/locality/time-free
    arguments in the module docstring.
    """

    def __init__(self, planner) -> None:
        self.planner = planner
        self.invalidate()

    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cache (fresh run, config change, or time regression)."""
        self._worker_entries: Dict[int, _WorkerEntry] = {}
        self._task_refs: Dict[int, Task] = {}
        self._task_fps: Dict[int, tuple] = {}
        #: Inverted index: task id -> worker ids whose uncapped reachable
        #: set contains it (drives removal invalidation).
        self._task_owners: Dict[int, Set[int]] = {}
        self._components: Dict[FrozenSet[int], _ComponentEntry] = {}
        #: Cached dependency structure of the previous epoch: when no
        #: worker's version changed and the worker stream is identical,
        #: the adjacency (a pure function of the reachable id-sets) and
        #: its component decomposition are reused verbatim instead of
        #: being rebuilt per epoch.
        self._adjacency: Optional[Dict[int, Set[int]]] = None
        self._adjacency_components: Optional[List[List[int]]] = None
        self._adjacency_key: Optional[Tuple[int, ...]] = None
        self._last_present: Set[int] = set()
        self._forced_workers: Set[int] = set()
        self._forced_tasks: Set[int] = set()
        self._task_epoch = 0
        #: Interned active-task id frozenset, valid for one ``_task_epoch``
        #: (membership can only change through the snapshot diff, which
        #: bumps the epoch): quiet epochs reuse one allocation instead of
        #: rebuilding an O(T) frozenset per plan call.
        self._available_ids: Optional[FrozenSet[int]] = None
        self._available_ids_epoch = -1
        #: Next speed-profile boundary of the travel model; crossing it is
        #: treated like a task-set change for the guided (TVF) search,
        #: whose snapshot statistics read travel costs (-inf so a fresh
        #: engine latches the first window unconditionally).
        self._next_travel_boundary = float("-inf")
        self._epoch = 0
        self._last_now = float("-inf")
        self._context_key: Optional[tuple] = None
        #: Strong references to the TVF / travel model the caches were built
        #: against — identity checks that (unlike ``id()``) cannot alias a
        #: new object allocated at a freed address.
        self._context_tvf: Optional[object] = None
        self._context_travel: Optional[object] = None

    def note_dirty(self, dirty: DirtySet) -> None:
        """Force the hinted entities dirty at the next planning call."""
        self._forced_workers.update(dirty.worker_ids)
        self._forced_tasks.update(dirty.task_ids)

    # ------------------------------------------------------------------ #
    def plan(
        self,
        workers: Sequence[Worker],
        tasks: Sequence[Task],
        now: float,
        deadline: Optional[float] = None,
    ):
        """Incremental equivalent of ``TaskPlanner.plan`` (no experience).

        ``deadline`` is an absolute ``perf_counter`` cutoff forwarded to
        every fresh component search; cache replays are effectively free
        and never consult it.  Deadline-degraded component answers are
        wall-clock-dependent, so they are *never* stored in the component
        cache — the next epoch retries the search at full quality.
        """
        from repro.assignment.planner import PlanningOutcome, greedy_component_fill

        planner = self.planner
        config = planner.config
        travel = planner.travel
        obs = planner.obs
        # Latch the travel model's speed-profile window for this decision
        # point (no-op for static models): every cost computed below — and
        # every cached cost being reused, whose horizons were clamped to
        # the previous window — now refers to one consistent multiplier.
        travel.begin_epoch(now)
        active = [task for task in tasks if not task.is_expired(now)]
        if not workers or not active:
            return PlanningOutcome(Assignment(), 0, 0, 0)
        workers_by_id = {worker.worker_id: worker for worker in workers}
        tasks_by_id = {task.task_id: task for task in active}

        tvf = planner.tvf
        context_key = (
            config.max_reachable,
            config.max_sequence_length,
            config.max_sequences,
            config.node_budget,
            config.adaptive_node_budget,
            config.search_mode,
            config.bound_mode,
            config.per_leg_pricing,
            config.use_tvf,
            config.tvf_min_workers,
            config.use_partition,
            getattr(tvf, "fit_version", None),
        )
        if (
            now < self._last_now
            or context_key != self._context_key
            or tvf is not self._context_tvf
            or travel is not self._context_travel
        ):
            self.invalidate()
            self._context_key = context_key
            self._context_tvf = tvf
            self._context_travel = travel
        self._last_now = now
        self._epoch += 1
        if now >= self._next_travel_boundary:
            # Crossed into a new speed-profile window: worker entries are
            # already covered by their clamped horizons, but guided (TVF)
            # component results read travel-cost statistics and must not be
            # replayed across windows — bump the epoch their reuse is
            # keyed on.  Static models report inf and never take this path
            # after the first call.
            self._task_epoch += 1
            self._next_travel_boundary = travel.next_profile_boundary(now)

        real = [task for task in active if not task.predicted]
        has_predicted = len(real) != len(active)

        with obs.span("diff") as diff_span:
            # ---- snapshot diff (object-identity fast path, field fallback) #
            added: List[Task] = []
            removed: Set[int] = set()
            for task in active:
                tid = task.task_id
                prev = self._task_refs.get(tid)
                if prev is None:
                    added.append(task)
                elif (
                    prev is not task
                    and not _task_unchanged(self._task_fps[tid], task)
                ):
                    removed.add(tid)
                    added.append(task)
            for tid in list(self._task_refs):
                if tid not in tasks_by_id:
                    removed.add(tid)
                    del self._task_refs[tid]
                    del self._task_fps[tid]
            for task in added:
                self._task_refs[task.task_id] = task
                self._task_fps[task.task_id] = _task_fingerprint(task)
            if added or removed:
                self._task_epoch += 1

            # ---- dirty-worker collection -------------------------------- #
            dirty: Set[int] = set(self._forced_workers)
            for tid in removed | self._forced_tasks:
                owners = self._task_owners.get(tid)
                if owners:
                    dirty.update(owners)
            for worker in workers:
                # Workers absent from the previous snapshot may have missed
                # arrivals while away; their cache cannot be trusted.
                if worker.worker_id not in self._last_present:
                    dirty.add(worker.worker_id)
            for task in added:
                for worker in workers:
                    wid = worker.worker_id
                    if wid in dirty:
                        continue
                    if task.predicted:
                        entry = self._worker_entries.get(wid)
                        if (
                            entry is not None
                            and entry.reachable_ids
                            and not entry.fallback
                        ):
                            # Predicted tasks only feed the empty-reachable
                            # fallback; a worker on the real pipeline with a
                            # non-empty set cannot be affected.
                            continue
                    # Euclidean check against the model's reach bound: sound
                    # for any travel model honouring the reach_bound
                    # contract, and bit-identical to the old travel.distance
                    # check for the Euclidean default (identity bound, same
                    # distance).
                    radius = travel.reach_bound(
                        (_HOPS + 1.0) * worker.reachable_distance
                    ) + 1e-6
                    if euclidean_distance(worker.location, task.location) <= radius:
                        dirty.add(wid)
            self._forced_workers.clear()
            self._forced_tasks.clear()
            diff_span.set(added=len(added), removed=len(removed), dirty=len(dirty))

        # Mirrors the full pipeline's index-usability test: the persistent
        # platform index is a valid candidate pre-filter only while it
        # covers every real task of this snapshot.
        index = planner.task_index
        use_index = index is not None and all(task.task_id in index for task in real)
        positions = (
            {task.task_id: i for i, task in enumerate(real)} if use_index else None
        )

        # ---- per-worker refresh ------------------------------------------ #
        reachable_by_worker: Dict[int, List[Task]] = {}
        sequences_by_worker: Dict[int, List[TaskSequence]] = {}
        reused_workers = 0
        recomputed_workers = 0
        reach_sets_changed = False
        #: One coordinate extraction per epoch, not per dirty worker: the
        #: single-row TravelMatrix rebuilds below all see the same ``real``
        #: (or ``active``) list whenever no index narrows the candidates.
        coords_cache: Dict[int, tuple] = {}
        with obs.span("refresh") as refresh_span:
            for worker in workers:
                wid = worker.worker_id
                entry = self._worker_entries.get(wid)
                old_reachable_ids = entry.reachable_ids if entry is not None else None
                if entry is None or not _worker_unchanged(entry.fingerprint, worker):
                    entry = self._refresh_worker(
                        worker, _worker_fingerprint(worker), entry, real, active,
                        has_predicted, now, use_index, positions, coords_cache,
                        force_bump=True,
                    )
                    recomputed_workers += 1
                elif wid in dirty or now >= entry.reach_horizon:
                    entry = self._refresh_worker(
                        worker, entry.fingerprint, entry, real, active,
                        has_predicted, now, use_index, positions, coords_cache,
                        force_bump=False,
                    )
                    recomputed_workers += 1
                elif now >= entry.seq_horizon:
                    self._refresh_sequences(entry, worker, now)
                    recomputed_workers += 1
                else:
                    reused_workers += 1
                if entry.reachable_ids != old_reachable_ids:
                    reach_sets_changed = True
                entry.last_seen = self._epoch
                reachable_by_worker[wid] = entry.reachable
                sequences_by_worker[wid] = entry.sequences
            refresh_span.set(reused=reused_workers, recomputed=recomputed_workers)
        if obs.enabled:
            obs.count("incremental.reused_workers", reused_workers)
            obs.count("incremental.recomputed_workers", recomputed_workers)

        # ---- components: reuse untouched, search the rest ---------------- #
        # The adjacency is a pure function of the per-worker reachable
        # id-sets — so when no reachable set changed (sequence-only
        # refreshes included: they cannot move a dependency edge) and the
        # worker stream is the same (same ids, same order, nobody joined
        # or left), last epoch's adjacency and component decomposition are
        # reused verbatim.
        worker_stream_key = tuple(worker.worker_id for worker in workers)
        with obs.span("decompose") as decompose_span:
            if (
                not reach_sets_changed
                and self._adjacency is not None
                and self._adjacency_key == worker_stream_key
            ):
                adjacency = self._adjacency
                components = self._adjacency_components
            else:
                adjacency = build_adjacency(reachable_by_worker)
                components = connected_components(adjacency)
                self._adjacency = adjacency
                self._adjacency_components = components
                self._adjacency_key = worker_stream_key
            # ---- decompose: replay cache hits, extract jobs for the rest - #
            # Slots keep the component order; a slot is either the cached
            # entry to replay or the index of a ComponentJob handed to the
            # executor.  Everything a job needs (subtree, budget, candidate
            # sets) is fixed here, before any search runs.
            use_guided = config.use_tvf and tvf is not None
            if self._available_ids_epoch != self._task_epoch:
                self._available_ids = frozenset(tasks_by_id)
                self._available_ids_epoch = self._task_epoch
            available_ids = self._available_ids
            slots: List[Tuple[str, object]] = []
            jobs: List[ComponentJob] = []
            job_meta: List[Tuple[FrozenSet[int], Dict[int, int], str]] = []
            for component in components:
                key = frozenset(component)
                versions = {
                    wid: self._worker_entries[wid].version for wid in component
                }
                guided = use_guided and len(component) >= config.tvf_min_workers
                mode = "tvf" if guided else config.search_mode
                cached = self._components.get(key)
                if (
                    cached is not None
                    and cached.versions == versions
                    and cached.mode == mode
                    and (not guided or cached.task_epoch == self._task_epoch)
                ):
                    slots.append(("cached", cached))
                    continue
                if config.use_partition:
                    root = build_component_subtree(adjacency, component)
                else:
                    root = PartitionNode(workers=list(component))
                num_sequences = sum(
                    len(sequences_by_worker.get(wid, [])) for wid in component
                )
                if guided:
                    job = ComponentJob(
                        index=len(jobs),
                        mode="tvf",
                        root=root,
                        worker_ids=tuple(component),
                        sequences_by_worker=sequences_by_worker,
                        workers_by_id=workers_by_id,
                        task_ids=available_ids,
                        tasks=active,
                        tvf=tvf,
                        num_sequences=num_sequences,
                    )
                else:
                    # Same per-component budget formula as the full pipeline
                    # (a pure function of the component's workers and their
                    # candidate sets), so replays stay bit-for-bit.
                    budget = config.node_budget
                    if config.adaptive_node_budget:
                        budget = adaptive_node_budget(
                            budget, len(component), num_sequences
                        )
                    job = ComponentJob(
                        index=len(jobs),
                        mode=mode,
                        root=root,
                        worker_ids=tuple(component),
                        sequences_by_worker=sequences_by_worker,
                        workers_by_id=workers_by_id,
                        task_ids=available_ids,
                        node_budget=budget,
                        bound_mode=config.bound_mode,
                        num_sequences=num_sequences,
                    )
                slots.append(("job", len(jobs)))
                jobs.append(job)
                job_meta.append((key, versions, mode))
            decompose_span.set(components=len(components), searched=len(jobs))

        # ---- dispatch ----------------------------------------------------- #
        with obs.span("dispatch", jobs=len(jobs)) as dispatch_span:
            results, stats = planner.executor().run(jobs, deadline=deadline, obs=obs)
            dispatch_span.set(parallel=stats.parallel_jobs)

        # ---- merge: component order, cache writes applied here ------------ #
        nodes_expanded = 0
        reused_components = 0
        searched_components = 0
        rung_level = 0
        epoch_selections: List[Tuple[int, Tuple[int, ...]]] = []
        used_ids: Set[int] = set()
        with obs.span("merge") as merge_span:
            for slot_kind, payload in slots:
                if slot_kind == "cached":
                    cached = payload
                    selections = cached.selections
                    nodes = cached.nodes_expanded
                    cached.last_used = self._epoch
                    reused_components += 1
                else:
                    job_index = payload
                    result = results[job_index]
                    key, versions, mode = job_meta[job_index]
                    job = jobs[job_index]
                    searched_components += 1
                    if result.skipped:
                        # Budget exhausted before this component's search
                        # started: greedy rung (first-fit over Q_w),
                        # uncached — the result depends on wall-clock, not
                        # just the component state.  Sequential across
                        # components (each fill consumes from what earlier
                        # components left), so it runs here at merge time,
                        # in component order.
                        selections = tuple(
                            greedy_component_fill(
                                list(job.worker_ids),
                                sequences_by_worker,
                                set(tasks_by_id) - used_ids,
                            )
                        )
                        nodes = 0
                        rung_level = max(rung_level, 2)
                    else:
                        selections = result.selections
                        nodes = result.nodes_expanded
                        if result.deadline_hit:
                            rung_level = max(rung_level, 1)
                        else:
                            # Deadline-cut answers are anytime partials tied
                            # to this epoch's wall-clock; caching one would
                            # replay a degraded plan on healthy future
                            # epochs.
                            self._components[key] = _ComponentEntry(
                                versions=versions,
                                selections=selections,
                                nodes_expanded=nodes,
                                mode=mode,
                                task_epoch=self._task_epoch,
                                last_used=self._epoch,
                            )
                nodes_expanded += nodes
                epoch_selections.extend(selections)
                for _, task_ids in selections:
                    used_ids.update(task_ids)
            merge_span.set(reused=reused_components, searched=searched_components)
        if obs.enabled:
            obs.count("incremental.reused_components", reused_components)
            obs.count("incremental.searched_components", searched_components)

        # ---- post-replan invariant check (self-healing) ------------------- #
        # Deliberately not wrapped in a span: the check is micro-scale on
        # every healthy epoch and a per-epoch span would be pure overhead
        # budget; the interesting case (a violation) emits an instant.
        if config.self_check:
            violation = self._find_violation(
                epoch_selections, tasks_by_id, workers_by_id
            )
            if violation is not None:
                return self._repair(workers, tasks, now, deadline, violation)
        try:
            assignment = Assignment()
            planned = 0
            for worker_id, task_ids in epoch_selections:
                if not task_ids:
                    continue
                worker = workers_by_id[worker_id]
                sequence_tasks = tuple(tasks_by_id[tid] for tid in task_ids)
                assignment.add(WorkerPlan(worker, TaskSequence(worker, sequence_tasks)))
                planned += len(task_ids)
        except (KeyError, ValueError) as exc:
            # Backstop behind the cheap checks: any corrupted cache state
            # that still slips into plan construction heals the same way.
            if not config.self_check:
                raise
            return self._repair(workers, tasks, now, deadline, repr(exc))

        if len(self._components) > _COMPONENT_CACHE_MAX:
            cutoff = self._epoch - _COMPONENT_CACHE_TTL
            stale = [k for k, e in self._components.items() if e.last_used < cutoff]
            for k in stale:
                del self._components[k]
        # Evict workers that left the stream long ago (offline, or planned
        # by a different caller): their entries and task-ownership
        # registrations would otherwise grow with every worker ever seen.
        if len(self._worker_entries) > max(64, 2 * len(workers)):
            cutoff = self._epoch - _COMPONENT_CACHE_TTL
            departed = [
                wid
                for wid, entry in self._worker_entries.items()
                if entry.last_seen < cutoff
            ]
            for wid in departed:
                self._drop_worker(wid)

        self._last_present = set(workers_by_id)

        from repro.assignment.planner import DEGRADATION_RUNGS

        return PlanningOutcome(
            assignment=assignment,
            planned_tasks=planned,
            nodes_expanded=nodes_expanded,
            num_components=len(components),
            reused_workers=reused_workers,
            recomputed_workers=recomputed_workers,
            reused_components=reused_components,
            searched_components=searched_components,
            rung=DEGRADATION_RUNGS[rung_level],
            deadline_hit=rung_level > 0,
            parallel_components=stats.parallel_jobs,
            executor_overhead_s=stats.overhead_s,
        )

    # ------------------------------------------------------------------ #
    # Self-healing: post-replan invariants and the repair path
    # ------------------------------------------------------------------ #
    def _find_violation(
        self,
        selections: List[Tuple[int, Tuple[int, ...]]],
        tasks_by_id: Dict[int, Task],
        workers_by_id: Dict[int, Worker],
    ) -> Optional[str]:
        """Cheap O(selected + workers) feasibility sweep over the epoch plan.

        Checks exactly the invariants any healthy epoch satisfies by
        construction: every planned worker appears once and is in the
        snapshot, every selected task is open and selected once, every
        non-empty selection is one of the worker's cached candidate
        sequences, and no cached horizon has gone NaN or negative (a NaN
        horizon makes the ``now >= horizon`` refresh test permanently
        false, freezing a stale cache forever — the signature of corrupted
        travel costs).  The horizon sweep covers every cached entry, not
        just the snapshot: a frozen dormant entry would poison the plan
        the moment its worker idles again, so it is repaired on sight.
        Returns a description of the first violation, or ``None``.

        This runs on every planned epoch, so the constant factor matters:
        lookups are hoisted and the sweep iterates the entry table
        directly instead of probing it per snapshot worker.
        """
        entries = self._worker_entries
        seen_workers: Set[int] = set()
        seen_tasks: Set[int] = set()
        for worker_id, task_ids in selections:
            if worker_id in seen_workers:
                return f"worker {worker_id} planned twice"
            seen_workers.add(worker_id)
            if worker_id not in workers_by_id:
                return f"planned worker {worker_id} not in snapshot"
            if not task_ids:
                continue
            for tid in task_ids:
                if tid in seen_tasks:
                    return f"task {tid} double-booked"
                seen_tasks.add(tid)
                if tid not in tasks_by_id:
                    return f"selected task {tid} not open"
            entry = entries.get(worker_id)
            if entry is None:
                return f"no cached state for planned worker {worker_id}"
            if task_ids not in entry.seq_set:
                return (
                    f"selection {task_ids} for worker {worker_id} "
                    "is not a cached candidate sequence"
                )
        for worker_id, entry in entries.items():
            # ``not (h >= 0)`` is True for NaN as well as negatives.
            if not (entry.reach_horizon >= 0.0) or not (entry.seq_horizon >= 0.0):
                return (
                    f"worker {worker_id} horizon corrupt "
                    f"(reach={entry.reach_horizon!r}, seq={entry.seq_horizon!r})"
                )
        return None

    def _repair(
        self,
        workers: Sequence[Worker],
        tasks: Sequence[Task],
        now: float,
        deadline: Optional[float],
        violation: str,
    ):
        """Heal a corrupted epoch: drop every cache, redo it with the full
        pipeline (which shares no state with the engine), and report the
        repair on the outcome."""
        _LOG.warning(
            "incremental plan invariant violation at now=%s: %s — "
            "dropping caches and replanning from scratch",
            now,
            violation,
        )
        obs = self.planner.obs
        if obs.enabled:
            obs.count("incremental.repairs")
            obs.instant("incremental.repair", violation=violation)
        self.invalidate()
        outcome = self.planner._plan_full(
            workers, tasks, now, collect_experience=False, deadline=deadline
        )
        outcome.repairs = 1
        return outcome

    # ------------------------------------------------------------------ #
    def _candidates_for(
        self,
        worker: Worker,
        real: List[Task],
        use_index: bool,
        positions: Optional[Dict[int, int]],
    ) -> List[Task]:
        """Candidate pre-filter for the real-task pipeline.

        With a covering index, only tasks inside the ``(hops + 1) · reach``
        ball can ever appear in the reachable set, and the candidates keep
        snapshot order — the same argument (and radius) as
        :func:`reachable_tasks_indexed`.
        """
        if not use_index or positions is None:
            return real
        radius = self.planner.travel.reach_bound(
            (_HOPS + 1.0) * worker.reachable_distance
        ) + 1e-6
        in_scope = [
            tid
            for tid in self.planner.task_index.query_radius(worker.location, radius)
            if tid in positions
        ]
        in_scope.sort(key=positions.__getitem__)
        return [real[positions[tid]] for tid in in_scope]

    @staticmethod
    def _epoch_coords(tasks: List[Task], coords_cache: Dict[int, tuple]) -> tuple:
        """The ``(tx, ty)`` float64 arrays of a task list shared across one
        epoch's single-row matrix rebuilds (keyed by list identity — the
        ``real`` / ``active`` lists live exactly as long as the plan call)."""
        key = id(tasks)
        coords = coords_cache.get(key)
        if coords is None:
            coords = (
                np.array([t.location.x for t in tasks], dtype=np.float64),
                np.array([t.location.y for t in tasks], dtype=np.float64),
            )
            coords_cache[key] = coords
        return coords

    def _refresh_worker(
        self,
        worker: Worker,
        fingerprint: tuple,
        old: Optional[_WorkerEntry],
        real: List[Task],
        active: List[Task],
        has_predicted: bool,
        now: float,
        use_index: bool,
        positions: Optional[Dict[int, int]],
        coords_cache: Dict[int, tuple],
        force_bump: bool,
    ) -> _WorkerEntry:
        """Recompute a dirty worker's reachable set and sequences."""
        planner = self.planner
        config = planner.config
        travel = planner.travel

        candidates = self._candidates_for(worker, real, use_index, positions)
        matrix = (
            TravelMatrix.for_single_worker(
                worker,
                candidates,
                travel,
                now=now,
                # Index-narrowed candidate lists are per-worker; only the
                # shared snapshot lists amortise coordinate extraction.
                task_coords=(
                    self._epoch_coords(candidates, coords_cache)
                    if candidates is real
                    else None
                ),
            )
            if len(candidates) >= VECTOR_MIN_TASKS
            else None
        )
        reachable, uncapped_ids, reach_horizon = reachable_tasks_with_horizon(
            worker,
            candidates,
            now,
            travel,
            max_tasks=config.max_reachable,
            hops=_HOPS,
            matrix=matrix,
        )
        fallback = False
        if not reachable and has_predicted:
            # Same fallback as the full pipeline: a worker with no real
            # reachable task plans over the full (predicted-augmented)
            # snapshot so prediction-aware strategies can reposition it.
            fallback = True
            matrix = (
                TravelMatrix.for_single_worker(
                    worker,
                    active,
                    travel,
                    now=now,
                    task_coords=self._epoch_coords(active, coords_cache),
                )
                if len(active) >= VECTOR_MIN_TASKS
                else None
            )
            reachable, uncapped_ids, reach_horizon = reachable_tasks_with_horizon(
                worker,
                active,
                now,
                travel,
                max_tasks=config.max_reachable,
                hops=_HOPS,
                matrix=matrix,
            )
        reachable_ids = tuple(task.task_id for task in reachable)

        horizon_box: List[float] = []
        sequences = maximal_valid_sequences(
            worker,
            reachable,
            now,
            travel,
            max_length=config.max_sequence_length,
            max_sequences=config.max_sequences,
            matrix=matrix,
            horizon_out=horizon_box,
            per_leg=config.per_leg_pricing,
        )
        seq_tuples = tuple(sequence.task_ids for sequence in sequences)
        seq_horizon = horizon_box[0]

        version = old.version if old is not None else 0
        if (
            force_bump
            or old is None
            or old.reachable_ids != reachable_ids
            or old.seq_tuples != seq_tuples
        ):
            version += 1

        if old is not None:
            # Reuse the existing entry object in place: a refresh per dirty
            # worker per epoch made the dataclass churn measurable at
            # platform scale, and nothing holds an entry across epochs by
            # value — component caches key on (worker id, version), which
            # mutation preserves exactly.
            old_uncapped = old.uncapped_ids
            entry = old
            entry.fingerprint = fingerprint
            entry.reachable = list(reachable)
            entry.reachable_ids = reachable_ids
            entry.uncapped_ids = uncapped_ids
            entry.reach_horizon = reach_horizon
            entry.sequences = sequences
            entry.seq_tuples = seq_tuples
            entry.seq_set = frozenset(seq_tuples)
            entry.seq_horizon = seq_horizon
            entry.fallback = fallback
            entry.version = version
        else:
            old_uncapped = frozenset()
            entry = _WorkerEntry(
                fingerprint=fingerprint,
                reachable=list(reachable),
                reachable_ids=reachable_ids,
                uncapped_ids=uncapped_ids,
                reach_horizon=reach_horizon,
                sequences=sequences,
                seq_tuples=seq_tuples,
                seq_set=frozenset(seq_tuples),
                seq_horizon=seq_horizon,
                fallback=fallback,
                version=version,
            )
        self._update_owners(worker.worker_id, old_uncapped, uncapped_ids)
        self._worker_entries[worker.worker_id] = entry
        return entry

    def _refresh_sequences(self, entry: _WorkerEntry, worker: Worker, now: float) -> None:
        """Re-enumerate sequences over an unchanged reachable set."""
        config = self.planner.config
        horizon_box: List[float] = []
        sequences = maximal_valid_sequences(
            worker,
            entry.reachable,
            now,
            self.planner.travel,
            max_length=config.max_sequence_length,
            max_sequences=config.max_sequences,
            horizon_out=horizon_box,
            per_leg=config.per_leg_pricing,
        )
        seq_tuples = tuple(sequence.task_ids for sequence in sequences)
        if seq_tuples != entry.seq_tuples:
            entry.version += 1
        entry.sequences = sequences
        entry.seq_tuples = seq_tuples
        entry.seq_set = frozenset(seq_tuples)
        entry.seq_horizon = horizon_box[0]

    def _drop_worker(self, worker_id: int) -> None:
        """Forget a departed worker's entry and ownership registrations."""
        entry = self._worker_entries.pop(worker_id)
        for tid in entry.uncapped_ids:
            owners = self._task_owners.get(tid)
            if owners is not None:
                owners.discard(worker_id)
                if not owners:
                    del self._task_owners[tid]

    def _update_owners(
        self, worker_id: int, old_ids: FrozenSet[int], new_ids: FrozenSet[int]
    ) -> None:
        # Takes the id-sets rather than entries: with in-place entry reuse
        # the old and new entry are the same object by the time this runs.
        if old_ids == new_ids:
            return
        for tid in old_ids - new_ids:
            owners = self._task_owners.get(tid)
            if owners is not None:
                owners.discard(worker_id)
                if not owners:
                    del self._task_owners[tid]
        for tid in new_ids - old_ids:
            self._task_owners.setdefault(tid, set()).add(worker_id)
