"""Rule ``pool-picklability`` — the executor boundary stays pure and
picklable.

``run_component_job`` is the process-pool entry point: everything it
touches must pickle cleanly and behave identically in a forked worker.
This rule statically walks the call graph reachable from the entry
function (resolving direct calls through in-project imports; dynamic
dispatch is out of scope and trusted) and flags, in every reachable
function:

* ``lambda`` expressions and nested ``def``s — closures do not pickle,
  and even un-pickled ones capture parent-side state.  The one blessed
  shape is an inline ``key=`` lambda passed directly to
  ``sort``/``sorted``/``min``/``max``: it is consumed immediately and can
  never escape into a result;
* ``open()`` and ``threading.*`` / ``multiprocessing.*`` / ``socket.*``
  constructions — handles and locks neither pickle nor mean anything in
  another process;
* reads of *mutable* module-level globals (dicts/lists/sets) — a forked
  worker sees the value from fork time, the parent's may have moved on;
  divergence is silent.  Immutable module constants (ints, strings,
  tuples) are fine and ignored.

It also checks the declared field annotations of the boundary dataclasses
(``ComponentJob`` / ``ComponentResult``) against a denylist of
unpicklable types (``Callable``, locks, IO handles, iterators, ...).

Safe global reads are registered in ``PoolContract.allowed_globals`` with
reasons, or suppressed inline.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceModule,
    dataclass_fields,
    resolve_dotted,
)

#: Annotation tokens that cannot cross a pickle boundary.
FORBIDDEN_FIELD_TOKENS = (
    "Callable",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "Event",
    "Thread",
    "Queue",
    "IO",
    "TextIO",
    "BinaryIO",
    "Iterator",
    "Generator",
    "Coroutine",
    "socket",
    "Pool",
    "Executor",
    "weakref",
    "memoryview",
)

_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.deque",
    "collections.Counter",
}

_SORT_FUNCS = {"sorted", "min", "max"}


def _module_dotted(relpath: str) -> str:
    """``src/repro/assignment/dfsearch.py`` -> ``repro.assignment.dfsearch``."""
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


def _mutable_globals(module: SourceModule) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> line."""
    found: Dict[str, int] = {}
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        )
        if not mutable and isinstance(value, ast.Call):
            dotted = resolve_dotted(value.func, module.aliases)
            name = dotted or (
                value.func.id if isinstance(value.func, ast.Name) else None
            )
            mutable = name in _MUTABLE_CONSTRUCTORS
        if mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    found[target.id] = node.lineno
    return found


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound inside ``func`` (params + any assignment target)."""
    names: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]:
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, (ast.comprehension,)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
    return names


def _inline_key_lambdas(func: ast.AST) -> Set[int]:
    """ids of Lambda nodes passed directly as ``key=`` to sort functions."""
    allowed: Set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        is_sort = (
            isinstance(node.func, ast.Name) and node.func.id in _SORT_FUNCS
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if not is_sort:
            continue
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Lambda):
                allowed.add(id(kw.value))
    return allowed


class PicklabilityRule(Rule):
    rule_id = "pool-picklability"
    description = (
        "the call graph under the pool entry point stays closure-free, "
        "handle-free and independent of parent-side mutable globals"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config
        assert config.pool is not None
        self.pool = config.pool

    # ------------------------------------------------------------------ #
    def check(self, project: Project) -> Iterable[Finding]:
        entry_module = project.find_module(self.pool.entry_module)
        if entry_module is None:
            # Nothing to anchor on: only an error for full-tree runs.
            if self.config.check_stale_registry:
                yield Finding(
                    rule="stale-registry",
                    path=self.pool.entry_module,
                    line=0,
                    message=(
                        f"pool contract anchor module "
                        f"{self.pool.entry_module!r} not found in the "
                        "analyzed tree"
                    ),
                    symbol=self.pool.entry_function,
                )
            return

        yield from self._check_boundary_fields(entry_module)

        reachable = self._reachable_functions(project, entry_module)
        if not reachable:
            yield Finding(
                rule="stale-registry",
                path=entry_module.relpath,
                line=0,
                message=(
                    f"pool entry function {self.pool.entry_function!r} not "
                    f"found in {entry_module.relpath}"
                ),
                symbol=self.pool.entry_function,
            )
            return
        used_globals: Set[str] = set()
        used_exemptions: Set[str] = set()
        for module, name, func in reachable:
            exempt = False
            for suffix in self.pool.exempt_modules:
                if module.relpath.endswith(suffix):
                    used_exemptions.add(suffix)
                    exempt = True
                    break
            if not exempt:
                yield from self._check_function(module, name, func, used_globals)
        if self.config.check_stale_registry:
            for suffix in self.pool.exempt_modules:
                if suffix not in used_exemptions:
                    yield Finding(
                        rule="stale-registry",
                        path=suffix,
                        line=0,
                        message=(
                            f"pool exempt_modules entry {suffix!r} matched "
                            "no reachable module — remove it or fix the path"
                        ),
                        symbol=suffix,
                    )
            for key in self.pool.allowed_globals:
                if key not in used_globals:
                    yield Finding(
                        rule="stale-registry",
                        path=key.split(":", 1)[0],
                        line=0,
                        message=(
                            f"pool allowed_globals entry {key!r} matched "
                            "nothing — remove it or fix the path/name"
                        ),
                        symbol=key,
                    )

    # ------------------------------------------------------------------ #
    def _check_boundary_fields(self, module: SourceModule) -> Iterator[Finding]:
        for class_name in self.pool.boundary_classes:
            cls = module.find_class(class_name)
            if cls is None:
                yield Finding(
                    rule="stale-registry",
                    path=module.relpath,
                    line=0,
                    message=f"pool boundary class {class_name!r} not found",
                    symbol=class_name,
                )
                continue
            for name, annotation, line in dataclass_fields(cls):
                bad = [t for t in FORBIDDEN_FIELD_TOKENS if t in annotation]
                if bad:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=line,
                        message=(
                            f"boundary field `{class_name}.{name}: "
                            f"{annotation}` carries unpicklable type "
                            f"token(s) {', '.join(sorted(set(bad)))}"
                        ),
                        symbol=f"{class_name}.{name}",
                    )

    # ------------------------------------------------------------------ #
    def _reachable_functions(
        self, project: Project, entry_module: SourceModule
    ) -> List[Tuple[SourceModule, str, ast.AST]]:
        """BFS the statically-reachable function set from the entry point.

        Reachability is *reference*-based, not call-based: any load of a
        project function name joins the graph (``engine = dfsearch if ...``
        aliases a function without a syntactic call), and any reference to
        a project class pulls in all of its methods (instantiating a class
        on the pool path ships the whole object across the boundary).
        Dynamic dispatch beyond that is out of scope and trusted.
        """
        by_dotted: Dict[str, SourceModule] = {
            _module_dotted(m.relpath): m for m in project
        }
        tables: Dict[str, Dict[str, ast.AST]] = {
            m.relpath: m.functions() for m in project
        }
        # class name -> its method keys ("Cls.meth") per module.
        class_methods: Dict[str, Dict[str, List[str]]] = {}
        for m in project:
            per_class: Dict[str, List[str]] = {}
            for key in tables[m.relpath]:
                if "." in key:
                    cls_name = key.split(".", 1)[0]
                    per_class.setdefault(cls_name, []).append(key)
            class_methods[m.relpath] = per_class

        def expand(
            module: SourceModule, name: str
        ) -> List[Tuple[SourceModule, str]]:
            """Function keys a bare name in ``module`` refers to, if any."""
            table = tables[module.relpath]
            if name in table:
                return [(module, name)]
            if name in class_methods[module.relpath]:
                return [(module, key) for key in class_methods[module.relpath][name]]
            return []

        def resolve_ref(
            module: SourceModule, node: ast.AST
        ) -> List[Tuple[SourceModule, str]]:
            if isinstance(node, ast.Name):
                local = expand(module, node.id)
                if local:
                    return local
                dotted = module.aliases.get(node.id)
            elif isinstance(node, ast.Attribute):
                dotted = resolve_dotted(node, module.aliases)
            else:
                return []
            if dotted is None or "." not in dotted:
                return []
            mod_path, ref_name = dotted.rsplit(".", 1)
            target = by_dotted.get(mod_path)
            # Imported submodule aliases resolve relative to any package
            # suffix match (fixtures are rooted outside src/).
            if target is None:
                for key, candidate in by_dotted.items():
                    if key.endswith(mod_path) or mod_path.endswith(key):
                        target = candidate
                        break
            if target is None:
                return []
            return expand(target, ref_name)

        entry = self.pool.entry_function
        if entry not in tables[entry_module.relpath]:
            return []
        seen: Set[Tuple[str, str]] = {(entry_module.relpath, entry)}
        queue: List[Tuple[SourceModule, str]] = [(entry_module, entry)]
        out: List[Tuple[SourceModule, str, ast.AST]] = []
        while queue:
            module, name = queue.pop(0)
            func = tables[module.relpath][name]
            out.append((module, name, func))
            own_class = name.split(".", 1)[0] if "." in name else None
            for node in ast.walk(func):
                refs = resolve_ref(module, node)
                if not refs and own_class is not None:
                    # self.method() within an already-reachable class.
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        refs = expand(module, f"{own_class}.{node.attr}")
                for target_module, target_name in refs:
                    key = (target_module.relpath, target_name)
                    if key not in seen:
                        seen.add(key)
                        queue.append((target_module, target_name))
        return out

    # ------------------------------------------------------------------ #
    def _check_function(
        self,
        module: SourceModule,
        name: str,
        func: ast.AST,
        used_globals: Set[str],
    ) -> Iterator[Finding]:
        allowed_lambdas = _inline_key_lambdas(func)
        locals_ = _local_names(func)
        mutables = _mutable_globals(module)
        flagged_globals: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Lambda) and id(node) not in allowed_lambdas:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"lambda on the pool path (in `{name}`): closures "
                        "do not pickle and capture parent-side state"
                    ),
                    symbol=f"{name}:lambda",
                )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"nested function `{node.name}` on the pool path "
                        f"(in `{name}`): a closure cannot cross the "
                        "executor boundary"
                    ),
                    symbol=f"{name}:{node.name}",
                )
            elif isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, module.aliases)
                if isinstance(node.func, ast.Name) and node.func.id == "open":
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        message=f"`open()` on the pool path (in `{name}`)",
                        symbol=f"{name}:open",
                    )
                elif dotted is not None and dotted.split(".")[0] in (
                    "threading",
                    "multiprocessing",
                    "socket",
                ):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            f"`{dotted}` on the pool path (in `{name}`): "
                            "locks/processes/sockets cannot cross the "
                            "executor boundary"
                        ),
                        symbol=f"{name}:{dotted}",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                gname = node.id
                if (
                    gname in mutables
                    and gname not in locals_
                    and gname not in flagged_globals
                ):
                    flagged_globals.add(gname)
                    allowed = False
                    for key, _reason in self.pool.allowed_globals.items():
                        suffix, _, allowed_name = key.partition(":")
                        if allowed_name == gname and module.relpath.endswith(suffix):
                            used_globals.add(key)
                            allowed = True
                            break
                    if not allowed:
                        yield Finding(
                            rule=self.rule_id,
                            path=module.relpath,
                            line=node.lineno,
                            message=(
                                f"read of mutable module global `{gname}` "
                                f"on the pool path (in `{name}`): parent "
                                "and forked worker can silently diverge"
                            ),
                            symbol=f"{name}:{gname}",
                        )
