"""Recurrent layers (LSTM / GRU) used by the prediction baselines."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concatenate, stack


class LSTMCell(Module):
    """Single LSTM cell operating on one time step."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates are stacked as [input, forget, cell, output] along the last axis.
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), seed=seed))
        self.weight_hh = Parameter(
            init.xavier_uniform((hidden_size, 4 * hidden_size), seed=None if seed is None else seed + 1)
        )
        self.bias = Parameter(init.zeros((4 * hidden_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, Tensor]:
        x = x if isinstance(x, Tensor) else Tensor(x)
        batch = x.shape[0]
        if state is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
            cell = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            hidden, cell = state
        gates = x @ self.weight_ih + hidden @ self.weight_hh + self.bias
        h = self.hidden_size
        input_gate = gates[:, 0:h].sigmoid()
        forget_gate = gates[:, h:2 * h].sigmoid()
        cell_candidate = gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[:, 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class LSTM(Module):
    """LSTM over a full sequence shaped ``(batch, time, features)``."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, seed: int | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(
                input_size if layer == 0 else hidden_size,
                hidden_size,
                seed=None if seed is None else seed + 10 * layer,
            )
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Run the LSTM over a sequence.

        Returns
        -------
        outputs:
            Hidden states of the last layer at every time step,
            shaped ``(batch, time, hidden)``.
        last_hidden:
            Hidden state of the last layer at the final step,
            shaped ``(batch, hidden)``.
        """
        x = x if isinstance(x, Tensor) else Tensor(x)
        if x.ndim != 3:
            raise ValueError("LSTM expects input of shape (batch, time, features)")
        seq = [x[:, t, :] for t in range(x.shape[1])]
        for cell in self.cells:
            state = None
            layer_out = []
            for step in seq:
                hidden, cell_state = cell(step, state)
                state = (hidden, cell_state)
                layer_out.append(hidden)
            seq = layer_out
        outputs = stack(seq, axis=1)
        return outputs, seq[-1]


class GRUCell(Module):
    """Single GRU cell."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates stacked as [reset, update] then a separate candidate projection.
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 2 * hidden_size), seed=seed))
        self.weight_hh = Parameter(
            init.xavier_uniform((hidden_size, 2 * hidden_size), seed=None if seed is None else seed + 1)
        )
        self.bias_gates = Parameter(init.zeros((2 * hidden_size,)))
        self.weight_in = Parameter(
            init.xavier_uniform((input_size, hidden_size), seed=None if seed is None else seed + 2)
        )
        self.weight_hn = Parameter(
            init.xavier_uniform((hidden_size, hidden_size), seed=None if seed is None else seed + 3)
        )
        self.bias_candidate = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, hidden: Tensor | None = None) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        batch = x.shape[0]
        if hidden is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
        gates = x @ self.weight_ih + hidden @ self.weight_hh + self.bias_gates
        h = self.hidden_size
        reset = gates[:, 0:h].sigmoid()
        update = gates[:, h:2 * h].sigmoid()
        candidate = (x @ self.weight_in + (reset * hidden) @ self.weight_hn + self.bias_candidate).tanh()
        return update * hidden + (1.0 - update) * candidate


class GRU(Module):
    """GRU over a sequence shaped ``(batch, time, features)``."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, seed: int | None = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            GRUCell(
                input_size if layer == 0 else hidden_size,
                hidden_size,
                seed=None if seed is None else seed + 10 * layer,
            )
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        x = x if isinstance(x, Tensor) else Tensor(x)
        if x.ndim != 3:
            raise ValueError("GRU expects input of shape (batch, time, features)")
        seq = [x[:, t, :] for t in range(x.shape[1])]
        for cell in self.cells:
            hidden = None
            layer_out = []
            for step in seq:
                hidden = cell(step, hidden)
                layer_out.append(hidden)
            seq = layer_out
        outputs = stack(seq, axis=1)
        return outputs, seq[-1]
