"""Figure 6: task-demand prediction on DiDi — AP, training and testing time
versus the time interval, for LSTM, Graph-WaveNet and DDGNN."""

from conftest import print_figure

from repro.experiments.config import PREDICTION_METHODS
from repro.experiments.prediction_experiments import PredictionExperiment
from repro.experiments.reporting import pivot_rows

import pytest

#: Paper-figure/ablation sweep: marked slow (see pytest.ini).
pytestmark = pytest.mark.slow

DELTA_T_VALUES = (30.0, 45.0, 60.0)


def test_fig6_prediction_didi(benchmark, bench_scale):
    experiment = PredictionExperiment(
        dataset="didi", scale=bench_scale, k=3, methods=PREDICTION_METHODS, seed=1
    )

    def run_sweep():
        return experiment.run(DELTA_T_VALUES)

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    dicts = [row.as_dict() for row in rows]
    methods = list(PREDICTION_METHODS)
    print_figure(
        "Fig. 6(a) — Average Precision vs delta_T (DiDi)",
        pivot_rows(dicts, "delta_t", "method", "average_precision"),
        ["delta_t", *methods],
    )
    print_figure(
        "Fig. 6(c) — training time (s) vs delta_T (DiDi)",
        pivot_rows(dicts, "delta_t", "method", "training_time"),
        ["delta_t", *methods],
    )
    print_figure(
        "Fig. 6(d) — testing time (s) vs delta_T (DiDi)",
        pivot_rows(dicts, "delta_t", "method", "testing_time"),
        ["delta_t", *methods],
    )

    for row in rows:
        assert 0.0 <= row.average_precision <= 1.0
        assert row.training_time > 0.0
        assert row.testing_time >= 0.0


def test_fig6b_assigned_tasks_by_predictor(benchmark, bench_scale):
    """Fig. 6(b): tasks assigned by DTA+TP when planning with each predictor."""
    experiment = PredictionExperiment(
        dataset="didi", scale=bench_scale, k=3, methods=PREDICTION_METHODS,
        seed=1, include_assignment=True,
    )

    def run_single():
        return experiment.run_for_delta_t(DELTA_T_VALUES[0])

    rows = benchmark.pedantic(run_single, rounds=1, iterations=1)
    print_figure(
        "Fig. 6(b) — number of assigned tasks by predictor (DiDi)",
        [{"method": r.method, "assigned_tasks": r.assigned_tasks} for r in rows],
        ["method", "assigned_tasks"],
    )
    for row in rows:
        assert row.assigned_tasks is not None and row.assigned_tasks >= 0
