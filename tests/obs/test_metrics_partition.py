"""The latency histograms respect the metrics wall-clock partition.

``SimulationMetrics.latency_by_class`` stores wall-clock measurements, so
it must be declared in :data:`METRICS_WALL_CLOCK_EXEMPT` (the static
analyser enforces the declaration) and must never leak into
:meth:`deterministic_state` (the bit-for-bit checkpoint/recovery
contract).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.registry import METRICS_WALL_CLOCK_EXEMPT
from repro.simulation.metrics import EPOCH_CLASSES, SimulationMetrics


def test_latency_by_class_is_declared_exempt():
    assert "latency_by_class" in METRICS_WALL_CLOCK_EXEMPT
    field_names = {f.name for f in dataclasses.fields(SimulationMetrics)}
    # Every exemption names a real field (no stale declarations).
    assert set(METRICS_WALL_CLOCK_EXEMPT) <= field_names


def test_latency_recordings_do_not_move_deterministic_state():
    a, b = SimulationMetrics(), SimulationMetrics()
    # Same stream, different wall-clock readings and epoch classes.
    a.record_plan(0.010, "full")
    a.record_plan(0.002, "incremental")
    b.record_plan(0.500, "degraded")
    b.record_plan(0.900, "degraded")
    assert a.deterministic_state() == b.deterministic_state()
    assert a.replan_latency_summary() != b.replan_latency_summary()


def test_summary_overall_merges_every_class():
    metrics = SimulationMetrics()
    for i, cls in enumerate(EPOCH_CLASSES):
        for _ in range(i + 1):
            metrics.record_plan(0.001 * (i + 1), cls)
    summary = metrics.replan_latency_summary()
    assert set(summary) == set(EPOCH_CLASSES) | {"overall"}
    assert summary["overall"]["count"] == sum(
        summary[cls]["count"] for cls in EPOCH_CLASSES
    )
    # Summaries are in milliseconds.
    assert summary["full"]["p50"] > 0.5


def test_empty_metrics_summary_is_empty():
    assert SimulationMetrics().replan_latency_summary() == {}
