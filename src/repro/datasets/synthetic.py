"""Synthetic ride-hailing workload generator.

The generator models a city as a set of demand *hotspots* (university,
restaurant district, business park, ...) with

* a spatial footprint (Gaussian around a centre),
* a temporal intensity profile (rush-hour bumps), and
* *demand flows* between hotspots — a surge at the source hotspot raises
  demand at the destination hotspot after a lag, which is exactly the
  cross-region dependency the paper's DDGNN is designed to learn.

Workers go online near hotspots (drivers position themselves where demand
is) with configurable availability windows and reachable distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import ATAInstance
from repro.core.task import Task
from repro.core.worker import AvailabilityWindow, Worker
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.profiles import DAY_SECONDS, SpeedProfile
from repro.spatial.timedep import TimeDependentTravelModel
from repro.spatial.travel import EuclideanTravelModel, TravelModel


@dataclass(frozen=True)
class Hotspot:
    """A demand centre with a Gaussian spatial footprint."""

    name: str
    center: Point
    spread: float
    base_rate: float
    #: Relative intensity multipliers over the horizon (piecewise, resampled).
    profile: Tuple[float, ...] = (1.0,)

    def intensity(self, fraction_of_horizon: float) -> float:
        """Demand intensity at a normalised time in [0, 1]."""
        if not self.profile:
            return self.base_rate
        position = min(max(fraction_of_horizon, 0.0), 1.0) * (len(self.profile) - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, len(self.profile) - 1)
        weight = position - lower
        value = self.profile[lower] * (1.0 - weight) + self.profile[upper] * weight
        return self.base_rate * value


@dataclass(frozen=True)
class DemandFlow:
    """Cross-region dependency: demand at ``source`` raises demand at ``target``.

    ``lag`` is the delay (seconds) after which the induced demand appears;
    ``strength`` scales how many induced tasks each source task spawns.
    """

    source: str
    target: str
    lag: float
    strength: float


@dataclass
class CityModel:
    """A city: bounding box, hotspots and the demand flows between them."""

    bounds: BoundingBox
    hotspots: List[Hotspot]
    flows: List[DemandFlow] = field(default_factory=list)

    def hotspot(self, name: str) -> Hotspot:
        for hotspot in self.hotspots:
            if hotspot.name == name:
                return hotspot
        raise KeyError(f"unknown hotspot {name!r}")

    def total_base_rate(self) -> float:
        return sum(h.base_rate for h in self.hotspots)


@dataclass
class WorkloadConfig:
    """Parameters of one generated workload (one paper dataset)."""

    name: str = "synthetic"
    num_workers: int = 200
    num_tasks: int = 2000
    horizon: float = 7200.0                 # evaluation window length (s)
    history_horizon: float = 3600.0         # preceding window for training data (s)
    task_valid_time: float = 40.0           # e - p (paper default 40 s)
    worker_available_time: float = 3600.0   # off - on (paper default 1 h)
    reachable_distance: float = 1.0         # km (paper default 1 km)
    worker_speed: float = 0.012             # km / s (≈ 43 km/h urban driving)
    seed: int = 7


@dataclass
class SyntheticWorkload:
    """A generated workload: the ATA instance plus historical tasks."""

    instance: ATAInstance
    historical_tasks: List[Task]
    config: WorkloadConfig
    city: CityModel

    @property
    def name(self) -> str:
        return self.config.name


def default_city(seed: int = 0, size_km: float = 10.0) -> CityModel:
    """A Chengdu-scale default city with four hotspots and two demand flows."""
    bounds = BoundingBox(0.0, 0.0, size_km, size_km)
    quarter = size_km / 4.0
    hotspots = [
        Hotspot(
            name="university",
            center=Point(quarter, quarter),
            spread=size_km * 0.06,
            base_rate=1.0,
            profile=(0.6, 1.4, 1.0, 0.7, 0.9, 1.2),
        ),
        Hotspot(
            name="restaurants",
            center=Point(3 * quarter, quarter),
            spread=size_km * 0.05,
            base_rate=0.9,
            profile=(0.5, 0.8, 1.5, 1.2, 0.8, 1.0),
        ),
        Hotspot(
            name="business_park",
            center=Point(quarter, 3 * quarter),
            spread=size_km * 0.07,
            base_rate=0.8,
            profile=(1.2, 1.0, 0.7, 0.9, 1.3, 0.8),
        ),
        Hotspot(
            name="residential",
            center=Point(3 * quarter, 3 * quarter),
            spread=size_km * 0.09,
            base_rate=0.7,
            profile=(0.8, 0.9, 1.0, 1.1, 1.0, 1.2),
        ),
    ]
    flows = [
        DemandFlow(source="university", target="restaurants", lag=600.0, strength=0.35),
        DemandFlow(source="restaurants", target="residential", lag=900.0, strength=0.30),
    ]
    return CityModel(bounds=bounds, hotspots=hotspots, flows=flows)


def evaluation_peak_windows(
    evaluation_start: float, horizon: float, period: float = DAY_SECONDS
):
    """Rush-hour peak intervals placed inside an evaluation window.

    Real rush hours sit at fixed clock times; for the compressed synthetic
    horizons the morning peak is placed at 25–45 % and the evening peak at
    65–85 % of the window ``[evaluation_start, evaluation_start +
    horizon)`` — every replay crosses four profile boundaries, the
    workload the time-dependent planning stack exists for.  Shared by the
    Euclidean (:func:`rush_hour_workload`) and road-network
    (:func:`repro.roadnet.scenario.roadnet_rushhour`) scenario builders so
    the two cannot drift apart.
    """
    peaks = (
        (evaluation_start + 0.25 * horizon, evaluation_start + 0.45 * horizon),
        (evaluation_start + 0.65 * horizon, evaluation_start + 0.85 * horizon),
    )
    if peaks[-1][1] > period:
        raise ValueError(
            "evaluation window does not fit inside the profile period; "
            "pass a larger period"
        )
    return peaks


def evaluation_rush_profile(
    config: "WorkloadConfig",
    peak_multiplier: float = 0.55,
    offpeak_multiplier: float = 1.0,
    period: float = DAY_SECONDS,
) -> SpeedProfile:
    """A rush-hour :class:`SpeedProfile` whose peaks hit the evaluation
    window (see :func:`evaluation_peak_windows` for the placement)."""
    peaks = evaluation_peak_windows(config.history_horizon, config.horizon, period)
    return SpeedProfile.rush_hour(
        peaks=peaks,
        peak_multiplier=peak_multiplier,
        offpeak_multiplier=offpeak_multiplier,
        period=period,
    )


def rush_hour_workload(
    config: Optional["WorkloadConfig"] = None,
    city: Optional[CityModel] = None,
    peak_multiplier: float = 0.55,
) -> "SyntheticWorkload":
    """A synthetic workload whose travel times follow a rush-hour profile.

    The instance travels on a
    :class:`~repro.spatial.timedep.TimeDependentTravelModel` wrapping the
    Euclidean default — the ride-hailing-trace shape (cf.
    :mod:`repro.datasets.didi` / :mod:`repro.datasets.yueche`) where the
    street geometry is abstracted away but congestion is not.  See
    :func:`repro.roadnet.scenario.roadnet_rushhour` for the variant with
    per-edge-class congestion on a real street graph.
    """
    config = config or WorkloadConfig(name="rushhour")
    profile = evaluation_rush_profile(config, peak_multiplier=peak_multiplier)
    travel = TimeDependentTravelModel(
        EuclideanTravelModel(speed=config.worker_speed), profile
    )
    return SyntheticWorkloadGenerator(city=city, config=config, travel=travel).generate()


class SyntheticWorkloadGenerator:
    """Generates tasks and workers from a :class:`CityModel`."""

    def __init__(
        self,
        city: Optional[CityModel] = None,
        config: Optional[WorkloadConfig] = None,
        travel: Optional[TravelModel] = None,
    ) -> None:
        self.config = config or WorkloadConfig()
        self.city = city or default_city(seed=self.config.seed)
        #: Travel model attached to the generated instance; ``None`` keeps
        #: the Euclidean default.  Passing a road-network model makes every
        #: platform replay and planner consultation use network times
        #: (see :mod:`repro.roadnet.scenario` for a ready-made builder).
        self.travel = travel
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # Task generation
    # ------------------------------------------------------------------ #
    def _sample_location(self, hotspot: Hotspot) -> Point:
        point = Point(
            float(self._rng.normal(hotspot.center.x, hotspot.spread)),
            float(self._rng.normal(hotspot.center.y, hotspot.spread)),
        )
        return self.city.bounds.clamp(point)

    def _hotspot_weights(self, fraction: float) -> np.ndarray:
        weights = np.array([h.intensity(fraction) for h in self.city.hotspots], dtype=np.float64)
        total = weights.sum()
        return weights / total if total > 0 else np.full(len(weights), 1.0 / len(weights))

    def generate_tasks(
        self,
        num_tasks: int,
        start_time: float,
        horizon: float,
        start_task_id: int = 0,
    ) -> List[Task]:
        """Generate ``num_tasks`` tasks over ``[start_time, start_time + horizon)``.

        Base tasks are drawn from the hotspots' temporal profiles; demand
        flows then convert a fraction of source-hotspot tasks into induced
        tasks at the target hotspot after the flow lag, creating the
        cross-region dependency structure.
        """
        if num_tasks <= 0:
            return []
        config = self.config
        hotspot_index = {h.name: i for i, h in enumerate(self.city.hotspots)}

        # How many induced tasks each flow contributes (bounded to leave
        # room for base demand).
        flow_budget = {}
        induced_total = 0
        for flow in self.city.flows:
            count = int(num_tasks * flow.strength * 0.25)
            flow_budget[(flow.source, flow.target)] = count
            induced_total += count
        base_count = max(num_tasks - induced_total, 1)

        tasks: List[Task] = []
        next_id = start_task_id

        # Base demand.
        arrival_times = np.sort(self._rng.uniform(0.0, horizon, size=base_count))
        base_by_hotspot: dict = {h.name: [] for h in self.city.hotspots}
        for offset in arrival_times:
            fraction = offset / horizon
            weights = self._hotspot_weights(fraction)
            choice = int(self._rng.choice(len(self.city.hotspots), p=weights))
            hotspot = self.city.hotspots[choice]
            publication = start_time + float(offset)
            tasks.append(
                Task(
                    task_id=next_id,
                    location=self._sample_location(hotspot),
                    publication_time=publication,
                    expiration_time=publication + config.task_valid_time,
                )
            )
            base_by_hotspot[hotspot.name].append(publication)
            next_id += 1

        # Induced demand through flows.
        for flow in self.city.flows:
            budget = flow_budget.get((flow.source, flow.target), 0)
            source_times = base_by_hotspot.get(flow.source, [])
            if budget <= 0 or not source_times:
                continue
            target = self.city.hotspot(flow.target)
            chosen = self._rng.choice(len(source_times), size=min(budget, len(source_times)), replace=False)
            for index in np.atleast_1d(chosen):
                publication = source_times[int(index)] + flow.lag + float(self._rng.normal(0.0, flow.lag * 0.1))
                if not start_time <= publication < start_time + horizon:
                    continue
                tasks.append(
                    Task(
                        task_id=next_id,
                        location=self._sample_location(target),
                        publication_time=publication,
                        expiration_time=publication + config.task_valid_time,
                    )
                )
                next_id += 1

        # Top up (flow tasks that fell outside the horizon) with base demand.
        while len(tasks) < num_tasks:
            offset = float(self._rng.uniform(0.0, horizon))
            fraction = offset / horizon
            weights = self._hotspot_weights(fraction)
            choice = int(self._rng.choice(len(self.city.hotspots), p=weights))
            hotspot = self.city.hotspots[choice]
            publication = start_time + offset
            tasks.append(
                Task(
                    task_id=next_id,
                    location=self._sample_location(hotspot),
                    publication_time=publication,
                    expiration_time=publication + config.task_valid_time,
                )
            )
            next_id += 1

        tasks = tasks[:num_tasks]
        tasks.sort(key=lambda task: task.publication_time)
        return tasks

    # ------------------------------------------------------------------ #
    # Worker generation
    # ------------------------------------------------------------------ #
    def generate_workers(self, num_workers: int, start_time: float, horizon: float) -> List[Worker]:
        """Generate workers positioned near hotspots with staggered shifts."""
        config = self.config
        workers: List[Worker] = []
        weights = self._hotspot_weights(0.5)
        for worker_id in range(num_workers):
            choice = int(self._rng.choice(len(self.city.hotspots), p=weights))
            hotspot = self.city.hotspots[choice]
            location = self._sample_location(hotspot)
            latest_start = max(horizon - config.worker_available_time, 0.0)
            on_offset = float(self._rng.uniform(0.0, latest_start)) if latest_start > 0 else 0.0
            on_time = start_time + on_offset
            off_time = min(on_time + config.worker_available_time, start_time + horizon)
            if off_time <= on_time:
                off_time = on_time + config.worker_available_time
            workers.append(
                Worker(
                    worker_id=worker_id,
                    location=location,
                    reachable_distance=config.reachable_distance,
                    on_time=on_time,
                    off_time=off_time,
                    speed=config.worker_speed,
                )
            )
        return workers

    # ------------------------------------------------------------------ #
    def generate(self) -> SyntheticWorkload:
        """Generate the full workload: history, evaluation tasks and workers."""
        config = self.config
        historical = self.generate_tasks(
            num_tasks=int(config.num_tasks * config.history_horizon / max(config.horizon, 1.0)),
            start_time=0.0,
            horizon=config.history_horizon,
            start_task_id=1_000_000,
        )
        evaluation_start = config.history_horizon
        tasks = self.generate_tasks(
            num_tasks=config.num_tasks,
            start_time=evaluation_start,
            horizon=config.horizon,
            start_task_id=0,
        )
        workers = self.generate_workers(config.num_workers, evaluation_start, config.horizon)
        instance = ATAInstance(
            workers=workers,
            tasks=tasks,
            travel=self.travel or EuclideanTravelModel(speed=config.worker_speed),
            name=config.name,
        )
        return SyntheticWorkload(
            instance=instance,
            historical_tasks=historical,
            config=config,
            city=self.city,
        )
