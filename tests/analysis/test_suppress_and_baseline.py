"""Inline-suppression syntax and committed-baseline behaviour."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, Finding

from analysis_helpers import findings_by_rule, run_fixtures


class TestSuppressions:
    def test_suppression_with_reason_silences_the_finding(self, site_config):
        report = run_fixtures(["suppress_ok.py"], site_config)
        assert report.clean
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "ordered-iteration"

    def test_missing_reason_is_rejected_and_finding_stays(self, site_config):
        report = run_fixtures(["suppress_bad.py"], site_config)
        assert not report.clean
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["ordered-iteration", "suppression-syntax"]
        syntax = findings_by_rule(report, "suppression-syntax")[0]
        assert "missing its written reason" in syntax.message

    def test_stale_suppression_is_reported(self, site_config):
        report = run_fixtures(["suppress_stale.py"], site_config)
        assert not report.clean
        stale = findings_by_rule(report, "stale-suppression")
        assert len(stale) == 1
        assert "matched no finding" in stale[0].message

    def test_directive_text_in_docstrings_is_not_parsed(self, site_config):
        # suppress.py's own module docstring documents the syntax; the
        # fixture files carry docstrings too — none may parse as
        # directives (only tokenize-level comments count).
        report = run_fixtures(["det_good.py", "order_good.py"], site_config)
        assert report.clean

    def test_meta_rules_cannot_be_suppressed(self, site_config, tmp_path):
        bad = tmp_path / "meta.py"
        bad.write_text(
            "from typing import Set\n"
            "\n"
            "\n"
            "def f(items: Set[int]):\n"
            "    # repro: allow[stale-suppression] -- fixture: not allowed\n"
            "    # repro: allow[ordered-iteration] -- fixture: stale on purpose\n"
            "    return sorted(items)\n"
        )
        from repro.analysis import load_modules, run_analysis

        modules = load_modules([bad], root=tmp_path)
        report = run_analysis([], site_config, root=tmp_path, modules=modules)
        # Both directives are stale; neither stale-suppression finding is
        # silenced by the first directive.
        assert len(findings_by_rule(report, "stale-suppression")) == 2


class TestBaseline:
    def finding(self, symbol="time.time", line=10):
        return Finding(
            rule="determinism",
            path="det_bad.py",
            line=line,
            message=f"wall-clock read: `{symbol}` on a deterministic path",
            symbol=symbol,
        )

    def test_roundtrip_and_fingerprint_ignores_line(self, tmp_path):
        baseline = Baseline.from_findings([self.finding(line=10)])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.diff([self.finding(line=99)])
        assert new == [] and stale == []
        assert len(baselined) == 1

    def test_new_finding_and_stale_entry_both_surface(self):
        baseline = Baseline.from_findings([self.finding("time.time")])
        new, baselined, stale = baseline.diff([self.finding("os.getenv")])
        assert [f.symbol for f in new] == ["os.getenv"]
        assert baselined == []
        assert [e["symbol"] for e in stale] == ["time.time"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_baselined_findings_do_not_fail_the_run(self, site_config):
        first = run_fixtures(["det_bad.py"], site_config)
        assert not first.clean
        baseline = Baseline.from_findings(first.findings)
        second = run_fixtures(["det_bad.py"], site_config, baseline=baseline)
        assert second.clean
        assert len(second.baselined) == len(first.findings)

    def test_committed_repo_baseline_is_empty(self):
        # The tree analyzes clean; the committed baseline must stay empty
        # (it only ever shrinks — new findings are fixed, not baselined).
        repo_root = Path(__file__).resolve().parents[2]
        baseline = Baseline.load(repo_root / "analysis_baseline.json")
        assert baseline.entries == []
