"""Incremental-replan microbenchmarks: dirty-region vs full replanning.

Two measurements, written into the ``incremental_replan`` section of
``BENCH_planning.json`` (merged, so the sections owned by
``test_planning_perf.py`` survive):

* **single-event stream** — a density-controlled snapshot evolves through
  single-arrival / single-dispatch events with time advancing between
  decision points, exactly the workload shape of Algorithm 3.  Every event
  is planned twice: by the PR 1 full-replan pipeline
  (``incremental_replan=False``, vectorized engine) and by the incremental
  engine; both latencies are recorded and the assignments are asserted
  bit-identical, so the speedup is measured on provably equivalent work.
* **streaming platform** — a full :class:`SCPlatform` replay of the
  Yueche-like workload under DTA, full vs incremental, comparing the
  paper's CPU-time metric (mean replan latency per decision point).

The same-run speedup ratios are machine-invariant and regression-gated by
``benchmarks/perf/check_regression.py``; absolute latencies are context.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import print_figure

#: Perf smoke: separate CI job (see pytest.ini).
pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULT_FILE = REPO_ROOT / "BENCH_planning.json"

#: (name, workers, tasks) — the same density-8 scales as the snapshot
#: benchmarks in ``test_planning_perf.py``.
STREAM_SCALES = [
    ("small", 25, 150),
    ("medium", 100, 800),
]

STREAM_DENSITY = 8.0


def make_stream_snapshot(num_workers, num_tasks, seed=7, reach=1.0):
    """Density-controlled snapshot with staggered task lifetimes."""
    from repro.core.task import Task
    from repro.core.worker import Worker
    from repro.spatial.geometry import Point

    rng = random.Random(seed)
    area = math.sqrt(num_tasks * math.pi * reach * reach / STREAM_DENSITY)
    workers = [
        Worker(
            i,
            Point(rng.uniform(0, area), rng.uniform(0, area)),
            reach * rng.uniform(0.8, 1.2),
            0.0,
            240.0,
        )
        for i in range(num_workers)
    ]
    tasks = [
        Task(
            10_000 + j,
            Point(rng.uniform(0, area), rng.uniform(0, area)),
            0.0,
            rng.uniform(20.0, 80.0),
        )
        for j in range(num_tasks)
    ]
    return workers, tasks, area, rng


def _plan_signature(outcome):
    return [
        (wp.worker.worker_id, wp.sequence.task_ids) for wp in outcome.assignment
    ]


def _latency_stats(samples):
    values = np.asarray(samples, dtype=np.float64) * 1000.0
    return float(values.mean()), float(np.percentile(values, 95))


@pytest.fixture(scope="module")
def incremental_results():
    """This module's numbers; merged into BENCH_planning.json at teardown."""
    section = {}
    yield section
    merged = json.loads(RESULT_FILE.read_text()) if RESULT_FILE.exists() else {}
    merged["incremental_replan"] = section
    RESULT_FILE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


class TestSingleEventStream:
    def test_single_event_stream_latency(self, bench_scale, incremental_results):
        """Per-event replan latency, full pipeline vs incremental engine."""
        from repro.assignment.planner import PlannerConfig, TaskPlanner
        from repro.core.task import Task
        from repro.spatial.geometry import Point
        from repro.spatial.travel import EuclideanTravelModel

        num_events = 8 if bench_scale.name == "quick" else 16
        section = {}
        rows = []
        for name, num_workers, num_tasks in STREAM_SCALES:
            workers, tasks, area, rng = make_stream_snapshot(num_workers, num_tasks)
            travel = EuclideanTravelModel(1.0)
            full = TaskPlanner(
                PlannerConfig(incremental_replan=False), travel=travel
            )
            incremental = TaskPlanner(
                PlannerConfig(incremental_replan=True), travel=travel
            )
            # Warm both: the cold first plan is identical work for both
            # engines; the stream measures the steady single-event state.
            incremental.plan(workers, tasks, 0.0)
            full.plan(workers, tasks, 0.0)

            now = 0.0
            next_id = 50_000
            full_samples = []
            incremental_samples = []
            reused = recomputed = 0
            for event in range(num_events):
                now += 0.2
                if event % 3 == 2 and tasks:
                    # Dispatch: a task leaves the snapshot and its worker
                    # relocates to the task location.
                    task = tasks.pop(rng.randrange(len(tasks)))
                    widx = rng.randrange(len(workers))
                    workers[widx] = workers[widx].moved_to(task.location)
                else:
                    # Arrival: one new task enters the snapshot.
                    tasks.append(
                        Task(
                            next_id,
                            Point(rng.uniform(0, area), rng.uniform(0, area)),
                            now,
                            now + rng.uniform(20.0, 80.0),
                        )
                    )
                    next_id += 1
                start = time.perf_counter()
                inc_outcome = incremental.plan(workers, tasks, now)
                incremental_samples.append(time.perf_counter() - start)
                start = time.perf_counter()
                full_outcome = full.plan(workers, tasks, now)
                full_samples.append(time.perf_counter() - start)
                # The speedup only counts if the answers are identical.
                assert _plan_signature(inc_outcome) == _plan_signature(full_outcome)
                assert inc_outcome.nodes_expanded == full_outcome.nodes_expanded
                reused += inc_outcome.reused_workers
                recomputed += inc_outcome.recomputed_workers

            full_mean, full_p95 = _latency_stats(full_samples)
            inc_mean, inc_p95 = _latency_stats(incremental_samples)
            speedup = full_mean / max(inc_mean, 1e-9)
            reuse_fraction = reused / max(reused + recomputed, 1)
            section[name] = {
                "workers": num_workers,
                "tasks": num_tasks,
                "events": num_events,
                "full_mean_ms": round(full_mean, 3),
                "full_p95_ms": round(full_p95, 3),
                "incremental_mean_ms": round(inc_mean, 3),
                "incremental_p95_ms": round(inc_p95, 3),
                "worker_reuse_fraction": round(reuse_fraction, 3),
                "speedup": round(speedup, 2),
            }
            rows.append(
                {
                    "scale": f"{name} ({num_workers}w/{num_tasks}t)",
                    "full_mean_ms": f"{full_mean:.1f}",
                    "incr_mean_ms": f"{inc_mean:.1f}",
                    "worker_reuse": f"{reuse_fraction:.0%}",
                    "speedup": f"{speedup:.2f}x",
                }
            )
        incremental_results["single_event_stream"] = section
        print_figure(
            "Single-event replan latency — full pipeline vs incremental engine",
            rows,
            ["scale", "full_mean_ms", "incr_mean_ms", "worker_reuse", "speedup"],
        )
        # Sanity floors well below the committed baseline (absorbing machine
        # noise); the committed BENCH_planning.json documents the real
        # ratios and check_regression.py gates them.
        assert section["medium"]["speedup"] >= 2.0
        assert section["small"]["speedup"] >= 1.2


class TestStreamingPlatformIncremental:
    def test_streaming_platform_replan_latency(self, bench_scale, incremental_results):
        """Mean replan latency of full platform replays, full vs incremental."""
        from repro.assignment.planner import PlannerConfig
        from repro.assignment.strategies import DTAStrategy
        from repro.datasets.yueche import generate_yueche
        from repro.simulation.platform import PlatformConfig, SCPlatform

        scale = bench_scale.workload_scale * 3.0  # the PR 1 "medium" stream
        workload = generate_yueche(scale=scale, seed=11)
        instance = workload.instance
        entry = {"workers": instance.num_workers, "tasks": instance.num_tasks}
        stats = {}
        for label, incremental in (("full", False), ("incremental", True)):
            strategy = DTAStrategy(
                config=PlannerConfig(incremental_replan=incremental)
            )
            platform = SCPlatform(
                instance,
                strategy,
                PlatformConfig(replan_interval=0.0, maintain_task_index=True),
            )
            metrics = platform.run()
            mean_ms, p95_ms = _latency_stats(metrics.cpu_times or [0.0])
            stats[label] = (mean_ms, p95_ms)
            entry[f"{label}_mean_replan_ms"] = round(mean_ms, 3)
            entry[f"{label}_p95_replan_ms"] = round(p95_ms, 3)
            entry[f"{label}_assigned"] = metrics.assigned_tasks
            entry[f"{label}_replans"] = metrics.replans
        # Same stream, same decisions — the engine is a pure optimisation.
        assert entry["full_assigned"] == entry["incremental_assigned"]
        assert entry["full_replans"] == entry["incremental_replans"]
        speedup = stats["full"][0] / max(stats["incremental"][0], 1e-9)
        entry["speedup"] = round(speedup, 2)
        incremental_results["streaming_platform"] = {"medium": entry}
        print_figure(
            "Streaming platform replan latency — full vs incremental (DTA)",
            [
                {
                    "scale": f"medium ({entry['workers']}w/{entry['tasks']}t)",
                    "full_mean_ms": entry["full_mean_replan_ms"],
                    "incr_mean_ms": entry["incremental_mean_replan_ms"],
                    "incr_p95_ms": entry["incremental_p95_replan_ms"],
                    "speedup": f"{speedup:.2f}x",
                }
            ],
            ["scale", "full_mean_ms", "incr_mean_ms", "incr_p95_ms", "speedup"],
        )
        # Event snapshots at this scale are small (scalar-path dominated),
        # so the bar is parity modulo wall-clock noise; the single-event
        # suite above carries the headline dirty-region speedup and
        # check_regression.py gates the committed ratio.
        assert speedup >= 0.8
