"""The adaptive assignment algorithm (Algorithm 3).

:class:`AdaptiveAssigner` consumes the arrival stream of workers and tasks
and maintains the planned assignment ``PA`` by re-running the Task Planning
Assignment (Alg. 4) whenever a new worker or task appears.  Idle workers
are dispatched on the first task of their planned sequence; completed tasks
and expired workers/tasks are removed.

This is the reference, event-by-event implementation of the paper's
algorithm.  The benchmark harness uses the richer engine in
:mod:`repro.simulation`, which supports all five evaluated strategies; both
share the dispatch semantics and are cross-validated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.assignment.incremental import DirtySet
from repro.assignment.planner import PlannerConfig, TaskPlanner
from repro.core.assignment import Assignment, WorkerPlan
from repro.core.events import ArrivalEvent
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.index import SpatialIndex
from repro.spatial.travel import EuclideanTravelModel, TravelModel


@dataclass
class _WorkerState:
    """Mutable execution state of one worker inside the adaptive loop."""

    worker: Worker
    busy_until: float = 0.0
    completed: int = 0

    def is_idle(self, now: float) -> bool:
        return now >= self.busy_until and self.worker.is_available(now)


@dataclass
class AdaptiveRunResult:
    """Outcome of an adaptive run over a full event stream."""

    assigned_tasks: int
    completed_by_worker: Dict[int, int]
    replans: int
    final_assignment: Assignment = field(default_factory=Assignment)


class AdaptiveAssigner:
    """Algorithm 3: adaptive task assignment over an arrival stream."""

    def __init__(
        self,
        planner: Optional[TaskPlanner] = None,
        travel: Optional[TravelModel] = None,
        predictor=None,
        predicted_task_start_id: int = 10_000_000,
    ) -> None:
        self.travel = travel or EuclideanTravelModel(speed=1.0)
        self.planner = planner or TaskPlanner(PlannerConfig(), travel=self.travel)
        self.predictor = predictor
        self._predicted_task_start_id = predicted_task_start_id
        # Mutable platform state.
        self._workers: Dict[int, _WorkerState] = {}
        self._pending_tasks: Dict[int, Task] = {}
        self._predicted_tasks: Dict[int, Task] = {}
        self._assigned_task_ids: set = set()
        self._replans = 0
        # Entities mutated since the last replan: handed to the planner's
        # incremental engine before each planning call (Algorithm 3's
        # events each touch one worker or task, which is exactly what the
        # dirty-region replan exploits).
        self._dirty = DirtySet()
        # Persistent incremental index of open real tasks (insert on
        # arrival, discard on assignment/expiry) shared with the planner.
        # The bucket size is re-derived from the first worker's reach (the
        # typical query radius); until then a unit grid is used.
        self._task_index: SpatialIndex = SpatialIndex(cell_size=1.0)
        self._index_sized = False
        self.planner.attach_task_index(self._task_index)

    def _size_index_for(self, worker: Worker) -> None:
        """Rebuild the task index with buckets sized to worker reach."""
        if self._index_sized:
            return
        self._index_sized = True
        cell = max(worker.reachable_distance, 1e-6)
        if cell == self._task_index.cell_size:
            return
        resized: SpatialIndex = SpatialIndex(cell_size=cell)
        for item, location in self._task_index.items():
            resized.insert(item, location)
        self._task_index = resized
        self.planner.attach_task_index(self._task_index)

    def close(self) -> None:
        """Detach the planner's search executor (shared pools stay warm)."""
        self.planner.close()

    # ------------------------------------------------------------------ #
    # State inspection helpers
    # ------------------------------------------------------------------ #
    @property
    def assigned_count(self) -> int:
        return len(self._assigned_task_ids)

    def pending_tasks(self, now: float) -> List[Task]:
        return [task for task in self._pending_tasks.values() if not task.is_expired(now)]

    def idle_workers(self, now: float) -> List[Worker]:
        return [
            state.worker for state in self._workers.values() if state.is_idle(now)
        ]

    # ------------------------------------------------------------------ #
    # Algorithm 3 main loop
    # ------------------------------------------------------------------ #
    def run(self, events: Sequence[ArrivalEvent]) -> AdaptiveRunResult:
        """Process a full, time-ordered arrival stream."""
        for event in events:
            self.process_event(event)
        return AdaptiveRunResult(
            assigned_tasks=self.assigned_count,
            completed_by_worker={wid: st.completed for wid, st in self._workers.items()},
            replans=self._replans,
        )

    def process_event(self, event: ArrivalEvent) -> None:
        """Handle one arrival: update state, replan, dispatch, clean up."""
        now = event.time
        if event.is_worker:
            worker: Worker = event.payload
            self._workers[worker.worker_id] = _WorkerState(worker=worker, busy_until=now)
            self._dirty.note_worker(worker.worker_id)
            self._size_index_for(worker)
        else:
            task: Task = event.payload
            if not task.predicted:
                self._pending_tasks[task.task_id] = task
                self._task_index.insert(task.task_id, task.location)
                self._dirty.note_task(task.task_id)

        plan = self._replan(now)
        self._dispatch(plan, now)
        self._garbage_collect(now)

    # ------------------------------------------------------------------ #
    def _replan(self, now: float) -> Assignment:
        """Lines 3-9: recompute the planned assignment PA via TPA."""
        idle = self.idle_workers(now)
        tasks = self.pending_tasks(now)
        if self.predictor is not None:
            tasks = tasks + self._current_predicted_tasks(now)
        if not idle or not tasks:
            return Assignment()
        self._replans += 1
        self.planner.note_dirty(self._dirty)
        self._dirty.clear()
        return self.planner.plan(idle, tasks, now).assignment

    def _current_predicted_tasks(self, now: float) -> List[Task]:
        return [task for task in self._predicted_tasks.values() if not task.is_expired(now)]

    def inject_predicted_tasks(self, tasks: Sequence[Task]) -> None:
        """Register externally generated predicted tasks (from a DemandPredictor)."""
        for task in tasks:
            if not task.predicted:
                raise ValueError("inject_predicted_tasks expects predicted tasks")
            self._predicted_tasks[task.task_id] = task

    def _dispatch(self, plan: Assignment, now: float) -> None:
        """Lines 10-14: idle workers execute the first task of their plan."""
        for worker_plan in plan:
            state = self._workers.get(worker_plan.worker.worker_id)
            if state is None or not state.is_idle(now):
                continue
            first_real = self._first_real_task(worker_plan, now)
            if first_real is None:
                continue
            travel_time = self.travel.time(state.worker.location, first_real.location)
            completion = now + travel_time
            if completion >= first_real.expiration_time or completion >= state.worker.off_time:
                continue
            # Commit: task assigned, worker busy and relocated.
            self._assigned_task_ids.add(first_real.task_id)
            self._pending_tasks.pop(first_real.task_id, None)
            self._task_index.discard(first_real.task_id)
            state.busy_until = completion
            state.completed += 1
            state.worker = state.worker.moved_to(first_real.location)
            self._dirty.note_worker(state.worker.worker_id)
            self._dirty.note_task(first_real.task_id)

    def _first_real_task(self, worker_plan: WorkerPlan, now: float) -> Optional[Task]:
        """First non-predicted, non-expired task of the planned sequence."""
        for task in worker_plan.sequence:
            if task.predicted:
                continue
            if task.is_expired(now):
                continue
            if task.task_id in self._assigned_task_ids:
                continue
            return task
        return None

    def _garbage_collect(self, now: float) -> None:
        """Line 15: drop expired tasks and workers past their offline time."""
        expired_tasks = [tid for tid, task in self._pending_tasks.items() if task.is_expired(now)]
        for tid in expired_tasks:
            del self._pending_tasks[tid]
            self._task_index.discard(tid)
            self._dirty.note_task(tid)
        expired_predicted = [
            tid for tid, task in self._predicted_tasks.items() if task.is_expired(now)
        ]
        for tid in expired_predicted:
            del self._predicted_tasks[tid]
        offline = [wid for wid, state in self._workers.items() if now >= state.worker.off_time]
        for wid in offline:
            del self._workers[wid]
            self._dirty.note_worker(wid)
