"""Spatial task entity (Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spatial.geometry import Point


@dataclass(frozen=True)
class Task:
    """A spatial task ``s = (l, p, e)``.

    Attributes
    ----------
    task_id:
        Unique identifier on the platform.
    location:
        Where the task must be performed (``s.l``).
    publication_time:
        When the task becomes available (``s.p``).
    expiration_time:
        Deadline by which the task must be completed (``s.e``).
    predicted:
        Whether this task was injected by the demand predictor rather than
        observed in the real stream.  Predicted tasks guide planning but do
        not count toward the number of assigned tasks.
    """

    task_id: int
    location: Point
    publication_time: float
    expiration_time: float
    predicted: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.expiration_time <= self.publication_time:
            raise ValueError(
                f"task {self.task_id}: expiration time ({self.expiration_time}) must be "
                f"after publication time ({self.publication_time})"
            )

    @property
    def valid_duration(self) -> float:
        """The paper's ``e - p``: how long the task stays assignable."""
        return self.expiration_time - self.publication_time

    def is_available(self, now: float) -> bool:
        """Whether the task is published and not yet expired at time ``now``."""
        return self.publication_time <= now < self.expiration_time

    def is_expired(self, now: float) -> bool:
        """Whether the task can no longer be completed at time ``now``."""
        return now >= self.expiration_time

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.task_id == other.task_id
