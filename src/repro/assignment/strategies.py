"""The five evaluated assignment strategies behind one interface.

Section V-B.2 of the paper compares:

* **Greedy** — each worker grabs the maximal valid task set from the
  unassigned tasks, no search.
* **FTA** — Fixed Task Assignment: worker dependency separation + DFSearch
  run once per worker; the resulting sequence is frozen and executed in
  order.
* **DTA** — Dynamic Task Assignment: the same separation + DFSearch
  machinery, but the plan is recomputed at every decision point from the
  current spatio-temporal state (no prediction).
* **DTA+TP** — DTA with predicted tasks injected by the demand predictor.
* **DATA-WA** — DTA+TP with the Task Value Function replacing exact search.

Every strategy exposes ``plan(idle_workers, pending_tasks, now)`` returning
an :class:`~repro.core.assignment.Assignment`; the simulation platform
dispatches the first task of each idle worker's planned sequence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.assignment.baselines import greedy_assignment
from repro.assignment.planner import PlannerConfig, PlanningOutcome, TaskPlanner
from repro.assignment.tvf import TaskValueFunction
from repro.core.assignment import Assignment, WorkerPlan
from repro.core.sequence import TaskSequence
from repro.core.task import Task
from repro.core.worker import Worker
from repro.spatial.travel import EuclideanTravelModel, TravelModel

#: Signature of the hook supplying predicted tasks for a given time.
PredictedTaskProvider = Callable[[float], List[Task]]


class AssignmentStrategy(ABC):
    """Common interface of the five evaluated assignment methods."""

    #: Human-readable name used in experiment tables.
    name: str = "strategy"

    def reset(self) -> None:
        """Clear any per-run state (called once before a simulation)."""

    @abstractmethod
    def plan(
        self, idle_workers: Sequence[Worker], pending_tasks: Sequence[Task], now: float
    ) -> Assignment:
        """Return the planned assignment for the current platform snapshot."""

    def notify_dispatch(self, worker_id: int, task_id: int) -> None:
        """Inform the strategy that a planned task has been executed."""

    def attach_task_index(self, index) -> None:
        """Receive the platform's persistent open-task spatial index.

        The platform keeps a :class:`~repro.spatial.index.SpatialIndex` of
        open tasks incrementally up to date across events; strategies that
        can exploit it (the planner-backed ones) use it to turn the
        per-worker reachability scan into a radius query.  The default is a
        no-op so index-unaware strategies keep working unchanged.
        """

    def notify_dirty(self, dirty) -> None:
        """Receive the platform's dirty set for the upcoming decision point.

        ``dirty`` is a :class:`~repro.assignment.incremental.DirtySet`
        naming the workers / tasks mutated since the previous planning
        call.  Planner-backed strategies forward it to the incremental
        replan engine, which treats the hints as forced-dirty (hints can
        only widen the recompute region, never narrow it).  The default is
        a no-op so dirty-unaware strategies keep working unchanged.
        """

    def attach_observability(self, obs) -> None:
        """Receive the platform run's :class:`repro.obs.Observability` handle.

        Planner-backed strategies forward it to their planner so pipeline
        spans and metrics from every layer land in the one per-run tracer
        and registry.  The default is a no-op: obs-unaware strategies keep
        working unchanged and simply contribute no spans.
        """

    def consume_last_outcome(self):
        """Return and clear the :class:`PlanningOutcome` of the last plan.

        The platform uses this to learn *how* the plan it just received was
        produced — which degradation rung served it, whether the planner's
        deadline fired, whether the incremental engine had to self-repair —
        without widening the ``plan()`` return type.  Strategies that do
        not plan through the planner return ``None`` (treated as a normal
        full-quality plan).
        """
        return None

    def snapshot_state(self):
        """Picklable snapshot of strategy state for checkpointing.

        Only state that shapes *future* decisions and cannot be rebuilt
        from the platform's own runtime belongs here (FTA's frozen
        sequences, DATA-WA's trained value function).  Derived caches —
        the incremental engine's component cache, travel rows — must NOT
        be snapshotted: they are rebuilt on demand and pinning them would
        bloat checkpoints for no behavioural gain.  ``None`` means the
        strategy is stateless across decision points.
        """
        return None

    def restore_state(self, state) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""

    def close(self) -> None:
        """Release planner/executor resources held by the strategy.

        Called by the platform when a run finishes.  The default is a
        no-op; planner-backed strategies detach their search executor
        (shared worker pools stay warm for the next run by design).
        """


class GreedyStrategy(AssignmentStrategy):
    """The Greedy baseline."""

    name = "Greedy"

    def __init__(self, travel: Optional[TravelModel] = None, max_sequence_length: int = 3) -> None:
        self.travel = travel or EuclideanTravelModel(speed=1.0)
        self.max_sequence_length = max_sequence_length

    def plan(self, idle_workers, pending_tasks, now):
        self.travel.begin_epoch(now)
        return greedy_assignment(
            idle_workers, pending_tasks, now, self.travel, self.max_sequence_length
        )


class _PlannerBackedStrategy(AssignmentStrategy):
    """Shared machinery for the strategies built on the TPA planner."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        travel: Optional[TravelModel] = None,
        tvf: Optional[TaskValueFunction] = None,
    ) -> None:
        self.config = config or PlannerConfig()
        # Resolution order mirrors TaskPlanner: explicit argument, then the
        # config's pluggable travel_model, then the Euclidean default.
        self.travel = travel or self.config.travel_model or EuclideanTravelModel(speed=1.0)
        self.planner = TaskPlanner(self.config, travel=self.travel, tvf=tvf)
        self._last_outcome: Optional[PlanningOutcome] = None

    def reset(self) -> None:
        # A new run restarts simulated time; the incremental engine's
        # horizons assume non-decreasing ``now`` and must not leak between
        # runs (part of the platform re-entrancy contract).
        self.planner.reset_cache()
        self._last_outcome = None

    def attach_task_index(self, index) -> None:
        self.planner.attach_task_index(index)

    def notify_dirty(self, dirty) -> None:
        self.planner.note_dirty(dirty)

    def attach_observability(self, obs) -> None:
        self.planner.attach_observability(obs)

    def consume_last_outcome(self) -> Optional[PlanningOutcome]:
        outcome, self._last_outcome = self._last_outcome, None
        return outcome

    def _plan_with_planner(self, idle_workers, pending_tasks, now) -> PlanningOutcome:
        outcome = self.planner.plan(idle_workers, pending_tasks, now)
        self._last_outcome = outcome
        return outcome

    def close(self) -> None:
        self.planner.close()


class FTAStrategy(_PlannerBackedStrategy):
    """Fixed Task Assignment: sequences are computed once and frozen."""

    name = "FTA"

    def __init__(self, config=None, travel=None) -> None:
        super().__init__(config=config, travel=travel)
        self._fixed: Dict[int, List[Task]] = {}
        self._committed_task_ids: set = set()

    def reset(self) -> None:
        super().reset()
        self._fixed.clear()
        self._committed_task_ids.clear()

    def plan(self, idle_workers, pending_tasks, now):
        # Workers without a frozen sequence — or whose previous fixed sequence
        # has been fully executed or expired — get a new one from a one-shot
        # plan over the tasks not yet committed to any frozen sequence.  The
        # "fixed" aspect is that a sequence, once given, is never adjusted to
        # later demand changes (unlike DTA).
        pending_ids = {task.task_id for task in pending_tasks}
        new_workers = [
            w
            for w in idle_workers
            if not any(
                task.task_id in pending_ids and not task.is_expired(now)
                for task in self._fixed.get(w.worker_id, [])
            )
        ]
        if new_workers:
            available = [
                task for task in pending_tasks if task.task_id not in self._committed_task_ids
            ]
            outcome = self._plan_with_planner(new_workers, available, now)
            for worker_plan in outcome.assignment:
                tasks = list(worker_plan.sequence)
                self._fixed[worker_plan.worker.worker_id] = tasks
                self._committed_task_ids.update(t.task_id for t in tasks)
        # The returned plan is simply each worker's remaining frozen sequence.
        assignment = Assignment()
        for worker in idle_workers:
            remaining = [
                task
                for task in self._fixed.get(worker.worker_id, [])
                if task.task_id in pending_ids and not task.is_expired(now)
            ]
            if remaining:
                assignment.add(WorkerPlan(worker, TaskSequence(worker, tuple(remaining))))
        return assignment

    def notify_dispatch(self, worker_id: int, task_id: int) -> None:
        sequence = self._fixed.get(worker_id)
        if sequence:
            self._fixed[worker_id] = [task for task in sequence if task.task_id != task_id]

    def snapshot_state(self):
        # The frozen sequences ARE the strategy: a resumed run that lost
        # them would re-plan workers FTA promised never to re-plan.
        return {
            "fixed": {wid: list(tasks) for wid, tasks in self._fixed.items()},
            "committed": set(self._committed_task_ids),
        }

    def restore_state(self, state) -> None:
        if state is None:
            return
        self._fixed = {wid: list(tasks) for wid, tasks in state["fixed"].items()}
        self._committed_task_ids = set(state["committed"])


class DTAStrategy(_PlannerBackedStrategy):
    """Dynamic Task Assignment: full replanning, no prediction."""

    name = "DTA"

    def plan(self, idle_workers, pending_tasks, now):
        return self._plan_with_planner(idle_workers, pending_tasks, now).assignment


class DTAPlusTPStrategy(_PlannerBackedStrategy):
    """DTA augmented with predicted tasks from the demand predictor."""

    name = "DTA+TP"

    def __init__(
        self,
        config=None,
        travel=None,
        predicted_task_provider: Optional[PredictedTaskProvider] = None,
    ) -> None:
        super().__init__(config=config, travel=travel)
        self.predicted_task_provider = predicted_task_provider

    def _augmented_tasks(self, pending_tasks, now) -> List[Task]:
        tasks = list(pending_tasks)
        if self.predicted_task_provider is not None:
            predicted = [
                task for task in self.predicted_task_provider(now) if not task.is_expired(now)
            ]
            existing = {task.task_id for task in tasks}
            tasks.extend(task for task in predicted if task.task_id not in existing)
        return tasks

    def plan(self, idle_workers, pending_tasks, now):
        tasks = self._augmented_tasks(pending_tasks, now)
        return self._plan_with_planner(idle_workers, tasks, now).assignment


class DataWAStrategy(DTAPlusTPStrategy):
    """DTA+TP with the Task Value Function guiding the search (DATA-WA)."""

    name = "DATA-WA"

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        travel=None,
        predicted_task_provider: Optional[PredictedTaskProvider] = None,
        tvf: Optional[TaskValueFunction] = None,
        train_on_first_plan: bool = True,
        tvf_training_epochs: int = 10,
    ) -> None:
        config = config or PlannerConfig()
        config.use_tvf = True
        super().__init__(config=config, travel=travel, predicted_task_provider=predicted_task_provider)
        if tvf is not None:
            self.planner.tvf = tvf
        self.train_on_first_plan = train_on_first_plan
        self.tvf_training_epochs = tvf_training_epochs

    def reset(self) -> None:
        # The trained TVF is intentionally kept across runs: the paper trains
        # it offline from DFSearch traces and reuses it online.  The replan
        # caches, however, must not survive a time restart.
        self.planner.reset_cache()
        self._last_outcome = None

    def snapshot_state(self):
        # The fitted TVF shapes every guided search after the bootstrap
        # plan; a resume must see the same function the crashed run used.
        return {"tvf": self.planner.tvf}

    def restore_state(self, state) -> None:
        if state is None:
            return
        self.planner.tvf = state["tvf"]

    def plan(self, idle_workers, pending_tasks, now):
        tasks = self._augmented_tasks(pending_tasks, now)
        tvf = self.planner.tvf
        if self.train_on_first_plan and tvf is not None and not tvf.is_fitted and idle_workers and tasks:
            # Bootstrap: run the exact search once on this snapshot, collect
            # (state, action, opt) experience and fit the TVF on it.
            self.planner.train_tvf(idle_workers, tasks, now, epochs=self.tvf_training_epochs)
        return self._plan_with_planner(idle_workers, tasks, now).assignment


def make_strategy(
    name: str,
    config: Optional[PlannerConfig] = None,
    travel: Optional[TravelModel] = None,
    predicted_task_provider: Optional[PredictedTaskProvider] = None,
    tvf: Optional[TaskValueFunction] = None,
    search_mode: Optional[str] = None,
) -> AssignmentStrategy:
    """Factory mapping the paper's method names to strategy objects.

    ``search_mode`` overrides the exact-search engine of planner-backed
    strategies (``"bnb"`` branch-and-bound, the default, or ``"exact"``
    plain DFSearch) without the caller having to build a full
    :class:`PlannerConfig`.  The caller's config object is never mutated
    — the override lives on a copy.
    """
    if search_mode is not None:
        config = (
            replace(config, search_mode=search_mode)
            if config is not None
            else PlannerConfig(search_mode=search_mode)
        )
    key = name.strip().lower().replace("_", "").replace("-", "").replace("+", "")
    if key == "greedy":
        return GreedyStrategy(travel=travel)
    if key == "fta":
        return FTAStrategy(config=config, travel=travel)
    if key == "dta":
        return DTAStrategy(config=config, travel=travel)
    if key in ("dtatp", "dtaplustp"):
        return DTAPlusTPStrategy(
            config=config, travel=travel, predicted_task_provider=predicted_task_provider
        )
    if key in ("datawa", "dataw"):
        return DataWAStrategy(
            config=config,
            travel=travel,
            predicted_task_provider=predicted_task_provider,
            tvf=tvf,
        )
    raise ValueError(f"unknown assignment strategy: {name!r}")
