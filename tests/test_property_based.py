"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assignment.dependency_graph import build_worker_dependency_graph
from repro.assignment.partition import chordal_completion
from repro.assignment.sequences import maximal_valid_sequences
from repro.assignment.tree import build_partition_tree, sibling_independence_violations
from repro.core.assignment import Assignment
from repro.core.sequence import TaskSequence, arrival_times
from repro.core.task import Task
from repro.core.worker import Worker
from repro.demand.dependency import normalized_adjacency
from repro.demand.metrics import average_precision, precision_recall_at_threshold
from repro.demand.timeseries import build_time_series
from repro.spatial.geometry import BoundingBox, Point, euclidean_distance, manhattan_distance
from repro.spatial.grid import GridSpec
from repro.spatial.index import SpatialIndex
from repro.spatial.travel import EuclideanTravelModel

# ------------------------------------------------------------------ #
# Strategies
# ------------------------------------------------------------------ #
finite_coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite_coord, finite_coord)


def tasks_strategy(max_tasks=6):
    def build(seeds):
        out = []
        for i, (x, y, pub, dur) in enumerate(seeds):
            out.append(Task(i + 1, Point(x, y), pub, pub + dur))
        return out

    seed = st.tuples(
        st.floats(0.0, 10.0), st.floats(0.0, 10.0),
        st.floats(0.0, 20.0), st.floats(1.0, 50.0),
    )
    return st.lists(seed, min_size=0, max_size=max_tasks).map(build)


# ------------------------------------------------------------------ #
# Geometry
# ------------------------------------------------------------------ #
class TestGeometryProperties:
    @given(points, points)
    def test_distance_symmetry_and_nonnegativity(self, a, b):
        assert euclidean_distance(a, b) >= 0.0
        assert math.isclose(euclidean_distance(a, b), euclidean_distance(b, a), rel_tol=1e-12)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean_distance(a, c) <= euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-9

    @given(points, points)
    def test_euclidean_never_exceeds_manhattan(self, a, b):
        assert euclidean_distance(a, b) <= manhattan_distance(a, b) + 1e-9

    @given(points)
    def test_grid_clamps_any_point_to_a_valid_cell(self, point):
        grid = GridSpec(BoundingBox(0, 0, 10, 10), rows=5, cols=5)
        index = grid.cell_index(point)
        assert 0 <= index < grid.num_cells


# ------------------------------------------------------------------ #
# Spatial index
# ------------------------------------------------------------------ #
class TestSpatialIndexProperties:
    @given(st.lists(st.tuples(st.integers(0, 50), points), min_size=0, max_size=40),
           points, st.floats(0.0, 50.0))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_query_radius_equals_brute_force(self, items, center, radius):
        index = SpatialIndex(cell_size=3.0)
        locations = {}
        for item, location in items:
            index.insert(item, location)
            locations[item] = location   # later insert wins, like the index
        expected = {i for i, p in locations.items() if euclidean_distance(p, center) <= radius}
        assert set(index.query_radius(center, radius)) == expected


# ------------------------------------------------------------------ #
# Sequences and assignments
# ------------------------------------------------------------------ #
class TestSequenceProperties:
    @given(tasks_strategy())
    @settings(deadline=None)
    def test_arrival_times_are_monotone(self, tasks):
        worker = Worker(1, Point(0, 0), 1000.0, 0.0, 10_000.0)
        times = arrival_times(worker, tasks, now=0.0, travel=EuclideanTravelModel(1.0))
        assert all(t1 <= t2 + 1e-9 for t1, t2 in zip(times, times[1:]))
        assert all(t >= 0.0 for t in times)

    @given(tasks_strategy())
    @settings(deadline=None)
    def test_maximal_sequences_are_valid_and_unique_sets(self, tasks):
        worker = Worker(1, Point(5, 5), 20.0, 0.0, 10_000.0)
        travel = EuclideanTravelModel(1.0)
        sequences = maximal_valid_sequences(worker, tasks, now=0.0, travel=travel, max_length=3)
        signatures = set()
        for sequence in sequences:
            assert sequence.is_valid(0.0, travel)
            signature = frozenset(sequence.task_ids)
            assert signature not in signatures
            signatures.add(signature)

    @given(tasks_strategy())
    @settings(deadline=None)
    def test_assignment_objective_counts_unique_tasks(self, tasks):
        workers = [Worker(i, Point(i, i), 1000.0, 0.0, 10_000.0) for i in range(1, 4)]
        assignment = Assignment()
        remaining = list(tasks)
        for worker in workers:
            take, remaining = remaining[:2], remaining[2:]
            if take:
                assignment.assign(worker, take)
        all_ids = [t.task_id for plan in assignment for t in plan.sequence]
        assert assignment.num_assigned_tasks == len(set(all_ids)) == len(all_ids)


# ------------------------------------------------------------------ #
# Graphs, partition, tree
# ------------------------------------------------------------------ #
class TestPartitionProperties:
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=0, max_size=30))
    @settings(deadline=None)
    def test_chordal_completion_only_adds_edges(self, edges):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(13))
        graph.add_edges_from((a, b) for a, b in edges if a != b)
        chordal, order = chordal_completion(graph)
        assert set(graph.edges) <= set(chordal.edges)
        assert sorted(order) == sorted(graph.nodes)
        assert nx.is_chordal(chordal) or graph.number_of_edges() == 0

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=0, max_size=25))
    @settings(deadline=None)
    def test_partition_tree_invariants(self, edges):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(11))
        graph.add_edges_from((a, b) for a, b in edges if a != b)
        tree = build_partition_tree(graph)
        covered = tree.all_workers()
        # Property i: every worker appears exactly once.
        assert sorted(covered) == sorted(graph.nodes)
        # Property ii: workers in sibling subtrees are independent.
        assert sibling_independence_violations(tree, graph) == []

    @given(st.dictionaries(st.integers(1, 8),
                           st.lists(st.integers(1, 10), max_size=5), max_size=8))
    @settings(deadline=None)
    def test_wdg_edges_require_shared_tasks(self, raw):
        reachable = {
            worker: [Task(tid, Point(0, 0), 0.0, 10.0) for tid in sorted(set(task_ids))]
            for worker, task_ids in raw.items()
        }
        graph = build_worker_dependency_graph(reachable)
        for a, b in graph.edges:
            shared = {t.task_id for t in reachable[a]} & {t.task_id for t in reachable[b]}
            assert shared


# ------------------------------------------------------------------ #
# Demand prediction utilities
# ------------------------------------------------------------------ #
class TestDemandProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 99.0), st.floats(0.0, 10.0), st.floats(0.0, 10.0)),
                    min_size=0, max_size=30))
    @settings(deadline=None)
    def test_time_series_values_are_binary(self, raw):
        grid = GridSpec(BoundingBox(0, 0, 10, 10), 3, 3)
        tasks = [Task(i + 1, Point(x, y), pub, pub + 5.0) for i, (pub, x, y) in enumerate(raw)]
        series = build_time_series(tasks, grid, 0.0, 100.0, delta_t=5.0, k=4)
        assert set(np.unique(series.values)) <= {0.0, 1.0}

    @given(st.integers(1, 60), st.integers(0, 59))
    @settings(deadline=None)
    def test_ap_bounded_and_perfect_for_separable_scores(self, positives, negatives):
        targets = np.array([1.0] * positives + [0.0] * negatives)
        probabilities = np.array([0.9] * positives + [0.1] * negatives)
        ap = average_precision(probabilities, targets)
        assert 0.0 <= ap <= 1.0 + 1e-9
        assert ap > 0.99

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50), st.floats(0.0, 1.0))
    @settings(deadline=None)
    def test_precision_recall_bounded(self, probs, threshold):
        probabilities = np.array(probs)
        targets = (probabilities > 0.5).astype(float)
        precision, recall = precision_recall_at_threshold(probabilities, targets, threshold)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0

    @given(st.integers(2, 8))
    @settings(deadline=None)
    def test_normalized_adjacency_rows_bounded(self, n):
        rng = np.random.default_rng(n)
        adjacency = rng.random((n, n))
        normalized = normalized_adjacency(adjacency)
        assert normalized.shape == (n, n)
        assert np.isfinite(normalized).all()
        assert (normalized >= 0).all()


# ------------------------------------------------------------------ #
# Time-dependent travel: profiles and horizon clamping
# ------------------------------------------------------------------ #
@st.composite
def speed_profiles(draw, period=64.0):
    """Random piecewise-constant profiles over a small period."""
    num_extra = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(
        set(
            draw(
                st.lists(
                    st.floats(1.0, period - 1.0, allow_nan=False),
                    min_size=num_extra,
                    max_size=num_extra,
                )
            )
        )
    )
    breakpoints = (0.0, *cuts)
    multipliers = tuple(
        draw(st.floats(0.25, 2.0, allow_nan=False)) for _ in breakpoints
    )
    from repro.spatial.profiles import SpeedProfile

    return SpeedProfile(breakpoints=breakpoints, multipliers=multipliers, period=period)


@st.composite
def timedep_scenario(draw):
    profile = draw(speed_profiles())
    num_tasks = draw(st.integers(min_value=0, max_value=8))
    tasks = [
        Task(
            100 + i,
            Point(draw(st.floats(0.0, 10.0)), draw(st.floats(0.0, 10.0))),
            0.0,
            draw(st.floats(1.0, 120.0)),
        )
        for i in range(num_tasks)
    ]
    worker = Worker(
        1,
        Point(draw(st.floats(0.0, 10.0)), draw(st.floats(0.0, 10.0))),
        draw(st.floats(0.5, 4.0)),
        0.0,
        draw(st.floats(10.0, 120.0)),
    )
    now = draw(st.floats(0.0, 100.0))
    return profile, worker, tasks, now


class TestTimeDependentProperties:
    @given(speed_profiles(), st.floats(0.0, 500.0, allow_nan=False))
    @settings(deadline=None)
    def test_profile_boundary_is_strictly_ahead_and_window_constant(self, profile, now):
        boundary = profile.next_boundary(now)
        assert boundary > now
        active = profile.multiplier_at(now)
        assert active in profile.multipliers
        if math.isfinite(boundary):
            # The multiplier is constant on [now, boundary).
            for fraction in (0.0, 0.37, 0.93):
                probe = now + (boundary - now) * fraction
                if probe < boundary:
                    assert profile.multiplier_at(probe) == active
        else:
            assert profile.multiplier_at(now + 12345.0) == active

    @given(timedep_scenario())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_reachable_horizon_clamped_and_constant_inside(self, scenario):
        from repro.assignment.reachability import (
            reachable_tasks,
            reachable_tasks_with_horizon,
        )
        from repro.spatial.timedep import TimeDependentTravelModel

        profile, worker, tasks, now = scenario
        model = TimeDependentTravelModel(EuclideanTravelModel(speed=1.0), profile)
        model.begin_epoch(now)
        capped, _, horizon = reachable_tasks_with_horizon(worker, tasks, now, model)
        # Clamp: cached sets never claim validity past the next boundary.
        assert horizon <= model.next_profile_boundary(now)
        reference = [t.task_id for t in capped]
        if horizon <= now:
            return
        for fraction in (0.25, 0.8, 0.999):
            probe = now + (horizon - now) * fraction
            if not (now <= probe < horizon):
                continue
            model.begin_epoch(probe)
            again = [t.task_id for t in reachable_tasks(worker, tasks, probe, model)]
            assert again == reference
        model.begin_epoch(now)  # leave the shared model latched at `now`

    @given(timedep_scenario())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sequence_horizon_clamped_and_constant_inside(self, scenario):
        from repro.assignment.reachability import reachable_tasks
        from repro.spatial.timedep import TimeDependentTravelModel

        profile, worker, tasks, now = scenario
        model = TimeDependentTravelModel(EuclideanTravelModel(speed=1.0), profile)
        model.begin_epoch(now)
        reachable = reachable_tasks(worker, tasks, now, model)
        box = []
        sequences = maximal_valid_sequences(
            worker, reachable, now, model, max_length=3, max_sequences=16,
            horizon_out=box,
        )
        horizon = box[0]
        assert horizon <= model.next_profile_boundary(now)
        signature = [s.task_ids for s in sequences]
        if horizon <= now:
            return
        for fraction in (0.3, 0.95):
            probe = now + (horizon - now) * fraction
            if not (now <= probe < horizon):
                continue
            model.begin_epoch(probe)
            again = maximal_valid_sequences(
                worker, reachable, probe, model, max_length=3, max_sequences=16
            )
            assert [s.task_ids for s in again] == signature
        model.begin_epoch(now)

    def test_boundary_reentry_is_not_missed_by_the_engine(self):
        """Regression for the clamp's raison d'être: a task unreachable in
        the congested window becomes reachable when the fast window opens.
        The per-task horizon boundaries never cover this (the set is
        *empty*, so there is no member boundary to flip); only the profile
        clamp forces the recompute.  The incremental engine must agree
        with a full replan at the boundary epoch."""
        from repro.assignment.planner import PlannerConfig, TaskPlanner
        from repro.spatial.profiles import SpeedProfile
        from repro.spatial.timedep import TimeDependentTravelModel

        profile = SpeedProfile(
            breakpoints=(0.0, 10.0), multipliers=(0.5, 2.0), period=1000.0
        )
        model = TimeDependentTravelModel(EuclideanTravelModel(speed=1.0), profile)
        worker = Worker(1, Point(0.0, 0.0), 10.0, 0.0, 1000.0)
        # distance 8: congested time 16 >= 15 - 0 (unreachable at 0);
        # fast-window time 4 < 15 - 10 (reachable at the boundary).
        task = Task(7, Point(8.0, 0.0), 0.0, 15.0)
        incremental = TaskPlanner(
            PlannerConfig(incremental_replan=True, travel_model=model)
        )
        full = TaskPlanner(
            PlannerConfig(incremental_replan=False, travel_model=model)
        )
        planned = []
        for now in (0.0, 10.0):  # second epoch lands exactly on the boundary
            a = incremental.plan([worker], [task], now)
            b = full.plan([worker], [task], now)
            assert [
                (wp.worker.worker_id, wp.sequence.task_ids) for wp in a.assignment
            ] == [
                (wp.worker.worker_id, wp.sequence.task_ids) for wp in b.assignment
            ]
            assert a.planned_tasks == b.planned_tasks
            planned.append(a.planned_tasks)
        # And the fast window genuinely flipped the outcome (re-entry).
        assert planned == [0, 1]
