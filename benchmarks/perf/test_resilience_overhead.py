"""Fault-tolerance runtime overhead: the resilient platform vs bare metal.

One measurement, written into the ``degradation_overhead`` section of
``BENCH_planning.json`` (merged, so the sections owned by the other perf
modules survive): a full :class:`SCPlatform` replay of the Yueche-like
quick stream under DTA with every PR 6 feature armed — ingestion
validation, per-epoch WAL entries, periodic checkpoints, the incremental
engine's post-replan invariant check, and a generous planning deadline
(never hit, so the decisions stay identical to bare metal — asserted).
The committed ``overhead_ratio`` is gated by
``benchmarks/perf/check_regression.py`` at an absolute <5% bound.

Measurement notes: the obvious estimator — time a resilient run, time a
bare-metal run, divide — does not survive shared runners.  Back-to-back
identical runs here drift by 10-40% (frequency scaling, noisy
neighbours), an A/A control of the ratio estimator read 0.86, and no
amount of pairing, ordering, or best-of-N recovered a 3% effect from
that.  So the committed ratio is **same-run instrumented**: one resilient
replay accumulates the CPU time (``time.process_time``) spent inside the
machinery hooks themselves, and the ratio is ``total / (total -
machinery)``.  Numerator and denominator come from the same process in
the same instant, so machine-wide slowdowns scale both together and
cancel; across runs the estimate is stable to a few tenths of a percent
where the A/B estimator swung by whole points.

What counts as machinery: the invariant self-check, WAL entry
construction, checkpoint capture, and event validation.  The first three
are wrapped in place (the wrapper's own clock calls are charged to the
machinery side, biasing the estimate *up*); validation is one tiny call
per arrival event, so rather than drown it in per-call wrapper overhead
it is micro-timed separately over the identical event stream (min over
several passes) and added to the machinery total.  The deadline feature
has no wrappable body at all: its healthy-path cost is a fused integer
compare shared with the pre-existing node-budget test plus one clock
poll per 64 node expansions, structurally below what any timer here can
resolve.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from conftest import print_figure

#: Perf smoke: separate CI job (see pytest.ini).
pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULT_FILE = REPO_ROOT / "BENCH_planning.json"

#: Instrumented resilient replays; the committed ratio is their median.
RESILIENT_REPS = 5
#: Bare-metal replays (decision-equality reference + context timing).
BASELINE_REPS = 3
#: Passes over the event stream when micro-timing ``validate_event``.
VALIDATE_PASSES = 5


@pytest.fixture(scope="module")
def resilience_results():
    """This module's numbers; merged into BENCH_planning.json at teardown."""
    section = {}
    yield section
    merged = json.loads(RESULT_FILE.read_text()) if RESULT_FILE.exists() else {}
    merged["degradation_overhead"] = section
    RESULT_FILE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


class TestResilienceOverhead:
    def _build(self, instance, resilient):
        from repro.assignment.planner import PlannerConfig
        from repro.assignment.strategies import DTAStrategy
        from repro.resilience.checkpoint import InMemoryCheckpointStore
        from repro.resilience.journal import InMemoryJournal
        from repro.simulation.platform import PlatformConfig, SCPlatform

        if resilient:
            planner_config = PlannerConfig(deadline_s=30.0, self_check=True)
            platform_config = PlatformConfig(
                replan_interval=0.0,
                maintain_task_index=True,
                validate_events=True,
                journal=InMemoryJournal(),
                checkpoint_store=InMemoryCheckpointStore(),
            )
        else:
            planner_config = PlannerConfig(deadline_s=None, self_check=False)
            platform_config = PlatformConfig(
                replan_interval=0.0,
                maintain_task_index=True,
                validate_events=False,
            )
        return SCPlatform(
            instance, DTAStrategy(config=planner_config), platform_config
        )

    def test_degradation_overhead(self, bench_scale, resilience_results):
        from repro.assignment import incremental
        from repro.core.events import validate_event
        from repro.datasets.yueche import generate_yueche
        from repro.simulation import platform as platform_mod

        workload = generate_yueche(scale=bench_scale.workload_scale, seed=11)
        instance = workload.instance

        def timed(resilient):
            platform = self._build(instance, resilient)
            start = time.process_time()
            metrics = platform.run()
            return time.process_time() - start, metrics, platform

        timed(False), timed(True)  # warm-up pair, discarded

        # -- bare-metal reference ------------------------------------
        base_times = []
        for _ in range(BASELINE_REPS):
            base_s, base_metrics, _ = timed(False)
            base_times.append(base_s)

        # -- validation cost, micro-timed off to the side ------------
        events = instance.event_stream()
        validate_s = float("inf")
        for _ in range(VALIDATE_PASSES):
            start = time.process_time()
            for event in events:
                validate_event(event)
            validate_s = min(validate_s, time.process_time() - start)

        # -- instrumented resilient replays --------------------------
        machinery = [0.0]

        def _wrap(owner, name):
            original = getattr(owner, name)

            def wrapper(*args, **kwargs):
                start = time.process_time()
                try:
                    return original(*args, **kwargs)
                finally:
                    machinery[0] += time.process_time() - start

            setattr(owner, name, wrapper)
            return owner, name, original

        hooks = (
            (incremental.IncrementalPlanEngine, "_find_violation"),
            (platform_mod.SCPlatform, "_journal_epoch"),
            (platform_mod.SCPlatform, "_maybe_checkpoint"),
        )
        saved = [_wrap(owner, name) for owner, name in hooks]
        ratios, resilient_times = [], []
        try:
            for _ in range(RESILIENT_REPS):
                machinery[0] = 0.0
                hard_s, hard_metrics, hard_platform = timed(True)
                spent = machinery[0] + validate_s
                ratios.append(hard_s / max(hard_s - spent, 1e-9))
                resilient_times.append(hard_s)
        finally:
            for owner, name, original in saved:
                setattr(owner, name, original)

        # The machinery must be observation-only on a healthy stream: the
        # generous deadline never fires, validation rejects nothing, and
        # every decision matches the bare-metal run.
        assert hard_metrics.assigned_tasks == base_metrics.assigned_tasks
        assert hard_metrics.replans == base_metrics.replans
        assert hard_metrics.degraded_epochs == 0
        assert hard_metrics.rejected_events == 0
        assert hard_metrics.invariant_repairs == 0
        journal_entries = len(hard_platform.config.journal)
        checkpoints = len(hard_platform.config.checkpoint_store)
        assert journal_entries > 0
        assert checkpoints > 0

        overhead = statistics.median(ratios)
        entry = {
            "workers": instance.num_workers,
            "tasks": instance.num_tasks,
            "baseline_ms": round(min(base_times) * 1000.0, 3),
            "resilient_ms": round(min(resilient_times) * 1000.0, 3),
            "journal_entries": journal_entries,
            "checkpoints": checkpoints,
            "overhead_ratio": round(overhead, 4),
        }
        resilience_results["small"] = entry
        print_figure(
            "Fault-tolerance overhead — resilient platform vs bare metal (DTA)",
            [
                {
                    "scale": f"small ({entry['workers']}w/{entry['tasks']}t)",
                    "baseline_ms": entry["baseline_ms"],
                    "resilient_ms": entry["resilient_ms"],
                    "journal": journal_entries,
                    "ckpts": checkpoints,
                    "overhead": f"{(overhead - 1.0) * 100.0:+.1f}%",
                }
            ],
            ["scale", "baseline_ms", "resilient_ms", "journal", "ckpts", "overhead"],
        )
        # The same absolute bound check_regression.py enforces on the
        # committed JSON, applied inline so the smoke run fails fast.
        assert overhead < 1.05
