"""Tests for prediction-guided, interruptible worker repositioning."""

import pytest

from repro.assignment.planner import PlannerConfig
from repro.assignment.strategies import DTAPlusTPStrategy
from repro.core.problem import ATAInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.simulation.platform import PlatformConfig, SCPlatform, _WorkerRuntime
from repro.spatial.geometry import Point
from repro.spatial.travel import EuclideanTravelModel


class TestWorkerRuntimeReposition:
    def _runtime(self):
        worker = Worker(1, Point(0, 0), 10.0, 0.0, 100.0)
        return _WorkerRuntime(worker=worker, busy_until=0.0)

    def test_advance_interpolates_linearly(self):
        runtime = self._runtime()
        runtime.reposition = (0.0, Point(0, 0), Point(10, 0), 10.0)
        runtime.advance_reposition(5.0)
        assert runtime.worker.location.x == pytest.approx(5.0)
        assert runtime.reposition is not None

    def test_advance_completes_at_arrival(self):
        runtime = self._runtime()
        runtime.reposition = (0.0, Point(0, 0), Point(10, 0), 10.0)
        runtime.advance_reposition(12.0)
        assert runtime.worker.location == Point(10, 0)
        assert runtime.reposition is None

    def test_repositioning_worker_stays_idle(self):
        runtime = self._runtime()
        runtime.reposition = (0.0, Point(0, 0), Point(10, 0), 10.0)
        assert runtime.is_idle(5.0)

    def test_no_reposition_is_noop(self):
        runtime = self._runtime()
        runtime.advance_reposition(5.0)
        assert runtime.worker.location == Point(0, 0)


class TestPredictionGuidedRepositioning:
    def test_worker_moves_towards_predicted_demand_and_serves_it(self):
        """A predicted task pulls the idle worker close enough to catch a
        short-lived real task it could not otherwise have reached in time."""
        travel = EuclideanTravelModel(speed=1.0)
        worker = Worker(1, Point(0, 0), 15.0, 0.0, 200.0)
        # The real task appears at t=20 far from the worker's start and lives
        # only 12 time units: reachable only if the worker pre-positions.
        real = Task(1, Point(14, 0), 20.0, 32.0)
        instance = ATAInstance([worker], [real], travel=travel, name="reposition")

        predicted = Task(900, Point(14, 0), 0.0, 60.0, predicted=True)
        strategy = DTAPlusTPStrategy(
            config=PlannerConfig(max_reachable=5, max_sequence_length=1),
            travel=travel,
            predicted_task_provider=lambda now: [predicted],
        )
        metrics = SCPlatform(instance, strategy, PlatformConfig(replan_interval=0.0)).run()
        assert metrics.assigned_tasks == 1

    def test_without_prediction_the_same_task_is_missed(self):
        travel = EuclideanTravelModel(speed=1.0)
        worker = Worker(1, Point(0, 0), 15.0, 0.0, 200.0)
        real = Task(1, Point(14, 0), 20.0, 32.0)
        instance = ATAInstance([worker], [real], travel=travel, name="no-reposition")
        from repro.assignment.strategies import DTAStrategy

        strategy = DTAStrategy(config=PlannerConfig(max_reachable=5, max_sequence_length=1),
                               travel=travel)
        metrics = SCPlatform(instance, strategy, PlatformConfig(replan_interval=0.0)).run()
        assert metrics.assigned_tasks == 0

    def test_repositioning_is_interrupted_by_real_work(self):
        """A real task published mid-reposition is still served promptly."""
        travel = EuclideanTravelModel(speed=1.0)
        worker = Worker(1, Point(0, 0), 20.0, 0.0, 200.0)
        real = Task(1, Point(2, 0), 5.0, 40.0)
        instance = ATAInstance([worker], [real], travel=travel, name="interrupt")

        predicted = Task(900, Point(18, 0), 0.0, 100.0, predicted=True)
        strategy = DTAPlusTPStrategy(
            config=PlannerConfig(max_reachable=5, max_sequence_length=1),
            travel=travel,
            predicted_task_provider=lambda now: [predicted],
        )
        metrics = SCPlatform(instance, strategy, PlatformConfig(replan_interval=0.0)).run()
        assert metrics.assigned_tasks == 1
