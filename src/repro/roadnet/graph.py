"""Directed road graphs: CSR storage, synthetic generators, edge-list files.

A :class:`RoadNetwork` is a plain struct-of-arrays directed graph: node
coordinates plus a CSR adjacency whose edges carry both a *length* (km,
the paper's travel distance ``td``) and a *travel time* (the paper's
``c``).  Keeping length and time separate is what makes the network
asymmetric and non-metric in the ways a real city is: one-way streets and
per-direction speeds make ``c(a, b) != c(b, a)`` even where the lengths
agree.

Two synthetic generators cover the common urban topologies — a Manhattan
street grid and a ring-and-spoke radial city — and an edge-list text
format round-trips real networks::

    # comment lines start with '#'
    node <id> <x> <y>
    edge <u> <v> <length> [<time>]

Generated edge lengths equal the straight-line segment lengths, so network
path length always dominates Euclidean displacement
(``min_dilation >= 1``), which is what lets
:class:`~repro.roadnet.model.RoadNetworkTravelModel` keep the identity
``reach_bound`` and the planner keep its Euclidean spatial pruning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.spatial.geometry import Point

__all__ = [
    "RoadNetwork",
    "grid_network",
    "radial_network",
    "load_edge_list",
    "save_edge_list",
    "classify_edges_by_speed",
]


@dataclass
class RoadNetwork:
    """A directed road graph in CSR form.

    Attributes
    ----------
    node_x, node_y:
        Node coordinates, shape (N,).
    indptr, indices:
        CSR adjacency: the out-edges of node ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``.
    edge_length, edge_time:
        Per-edge travel distance and travel time, aligned with ``indices``.
    """

    node_x: np.ndarray
    node_y: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    edge_length: np.ndarray
    edge_time: np.ndarray
    name: str = "roadnet"
    _min_dilation: Optional[float] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.node_x)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def node_point(self, node: int) -> Point:
        return Point(float(self.node_x[node]), float(self.node_y[node]))

    def out_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(neighbors, lengths, times)`` views of node's out-edges."""
        start, end = int(self.indptr[node]), int(self.indptr[node + 1])
        return (
            self.indices[start:end],
            self.edge_length[start:end],
            self.edge_time[start:end],
        )

    @property
    def min_dilation(self) -> float:
        """Minimum edge ``length / straight-line`` ratio over the graph.

        ``>= 1`` means every edge is at least as long as its straight-line
        segment, hence any network path's length dominates the Euclidean
        displacement between its endpoints — the property behind the
        identity ``reach_bound``.  Degenerate zero-length segments are
        skipped; an edge-free graph reports 1.
        """
        if self._min_dilation is None:
            if self.num_edges == 0:
                self._min_dilation = 1.0
            else:
                src = np.repeat(
                    np.arange(self.num_nodes), np.diff(self.indptr)
                )
                dx = self.node_x[self.indices] - self.node_x[src]
                dy = self.node_y[self.indices] - self.node_y[src]
                straight = np.sqrt(dx * dx + dy * dy)
                valid = straight > 0.0
                if not valid.any():
                    self._min_dilation = 1.0
                else:
                    self._min_dilation = float(
                        np.min(self.edge_length[valid] / straight[valid])
                    )
        return self._min_dilation

    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        nodes: Sequence[Tuple[float, float]],
        edges: Sequence[Tuple[int, int, float, float]],
        name: str = "roadnet",
    ) -> "RoadNetwork":
        """Build a network from ``(x, y)`` nodes and ``(u, v, length, time)`` edges."""
        num_nodes = len(nodes)
        node_x = np.array([x for x, _ in nodes], dtype=np.float64)
        node_y = np.array([y for _, y in nodes], dtype=np.float64)
        for u, v, length, time in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) references an unknown node")
            if length < 0 or time < 0:
                raise ValueError(f"edge ({u}, {v}) has negative length/time")
        order = sorted(range(len(edges)), key=lambda k: (edges[k][0], edges[k][1]))
        counts = np.zeros(num_nodes, dtype=np.int64)
        for u, _, _, _ in edges:
            counts[u] += 1
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.array([edges[k][1] for k in order], dtype=np.int64)
        edge_length = np.array([edges[k][2] for k in order], dtype=np.float64)
        edge_time = np.array([edges[k][3] for k in order], dtype=np.float64)
        return cls(
            node_x=node_x,
            node_y=node_y,
            indptr=indptr,
            indices=indices,
            edge_length=edge_length,
            edge_time=edge_time,
            name=name,
        )


def _directed_speed(rng: np.random.Generator, speed: float, jitter: float) -> float:
    """Per-directed-edge speed with multiplicative jitter (asymmetry source)."""
    if jitter <= 0.0:
        return speed
    return speed * float(rng.uniform(1.0 - jitter, 1.0 + jitter))


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    speed: float = 1.0,
    seed: Optional[int] = None,
    speed_jitter: float = 0.0,
    one_way_fraction: float = 0.0,
    name: str = "grid",
) -> RoadNetwork:
    """A ``rows × cols`` Manhattan street grid.

    Node ``(r, c)`` sits at ``(c * spacing, r * spacing)``; neighbouring
    nodes are connected in both directions.  ``speed_jitter`` draws an
    independent speed multiplier in ``[1 - j, 1 + j]`` per *directed*
    edge, so opposite directions of the same street differ in travel time
    (asymmetry); ``one_way_fraction`` drops that fraction of reverse
    edges entirely (one-way streets — note this may make a few node pairs
    unreachable, which the planner handles as infinite travel times).
    Edge lengths equal the segment lengths, so ``min_dilation == 1``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid_network needs at least one row and column")
    if speed <= 0:
        raise ValueError("speed must be positive")
    # seed=None draws fresh OS entropy: jitter / one-way still apply, the
    # network is just not reproducible (an explicit seed pins it).
    rng = np.random.default_rng(seed)
    nodes = [(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
    edges: List[Tuple[int, int, float, float]] = []

    def add_pair(u: int, v: int) -> None:
        length = spacing
        edges.append((u, v, length, length / _directed_speed(rng, speed, speed_jitter)))
        if one_way_fraction <= 0.0 or rng.random() >= one_way_fraction:
            edges.append((v, u, length, length / _directed_speed(rng, speed, speed_jitter)))

    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                add_pair(u, u + 1)
            if r + 1 < rows:
                add_pair(u, u + cols)
    return RoadNetwork.from_edges(nodes, edges, name=name)


def radial_network(
    rings: int = 4,
    spokes: int = 8,
    ring_spacing: float = 1.0,
    speed: float = 1.0,
    seed: Optional[int] = None,
    speed_jitter: float = 0.0,
    center: Tuple[float, float] = (0.0, 0.0),
    name: str = "radial",
) -> RoadNetwork:
    """A ring-and-spoke radial city: a centre, ``rings`` concentric rings
    of ``spokes`` nodes each, radial edges along spokes and arc edges
    around rings (all bidirectional, chord-length edges)."""
    if rings < 1 or spokes < 3:
        raise ValueError("radial_network needs rings >= 1 and spokes >= 3")
    if speed <= 0:
        raise ValueError("speed must be positive")
    rng = np.random.default_rng(seed)
    cx, cy = center
    nodes: List[Tuple[float, float]] = [(cx, cy)]
    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            nodes.append((cx + radius * math.cos(angle), cy + radius * math.sin(angle)))

    def node_id(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    edges: List[Tuple[int, int, float, float]] = []

    def add_pair(u: int, v: int) -> None:
        ux, uy = nodes[u]
        vx, vy = nodes[v]
        length = math.sqrt((ux - vx) ** 2 + (uy - vy) ** 2)
        edges.append((u, v, length, length / _directed_speed(rng, speed, speed_jitter)))
        edges.append((v, u, length, length / _directed_speed(rng, speed, speed_jitter)))

    for spoke in range(spokes):
        add_pair(0, node_id(1, spoke))
        for ring in range(1, rings):
            add_pair(node_id(ring, spoke), node_id(ring + 1, spoke))
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            add_pair(node_id(ring, spoke), node_id(ring, (spoke + 1) % spokes))
    return RoadNetwork.from_edges(nodes, edges, name=name)


def classify_edges_by_speed(network: RoadNetwork, num_classes: int = 2) -> np.ndarray:
    """Assign each directed edge a class index by free-flow speed quantile.

    Class ``num_classes - 1`` holds the fastest edges (arterials), class
    ``0`` the slowest (local streets) — the split real rush-hour profiles
    care about, since congestion hits arterials hardest.  Classification is
    a pure function of the network (speed = ``length / time``, quantile
    thresholds over the finite speeds), so it is deterministic and
    reusable across runs.  Zero-time or zero-length edges land in class 0.
    """
    if num_classes < 1:
        raise ValueError("num_classes must be at least 1")
    classes = np.zeros(network.num_edges, dtype=np.int64)
    if num_classes == 1 or network.num_edges == 0:
        return classes
    with np.errstate(divide="ignore", invalid="ignore"):
        speed = network.edge_length / network.edge_time
    finite = np.isfinite(speed) & (speed > 0.0)
    if not finite.any():
        return classes
    thresholds = np.quantile(
        speed[finite], [k / num_classes for k in range(1, num_classes)]
    )
    classes[finite] = np.searchsorted(thresholds, speed[finite], side="left")
    return classes


# --------------------------------------------------------------------- #
# Edge-list files
# --------------------------------------------------------------------- #


def load_edge_list(path, default_speed: float = 1.0, name: Optional[str] = None) -> RoadNetwork:
    """Load a network from the ``node`` / ``edge`` line format.

    Node ids may be arbitrary integers; they are remapped to dense indices
    in ascending id order.  Edges without an explicit time get
    ``length / default_speed``.
    """
    path = Path(path)
    raw_nodes: dict = {}
    raw_edges: List[Tuple[int, int, float, float]] = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        kind = parts[0]
        if kind == "node":
            if len(parts) != 4:
                raise ValueError(f"{path}:{line_no}: node lines need 'node id x y'")
            raw_nodes[int(parts[1])] = (float(parts[2]), float(parts[3]))
        elif kind == "edge":
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"{path}:{line_no}: edge lines need 'edge u v length [time]'"
                )
            u, v = int(parts[1]), int(parts[2])
            length = float(parts[3])
            time = float(parts[4]) if len(parts) == 5 else length / default_speed
            raw_edges.append((u, v, length, time))
        else:
            raise ValueError(f"{path}:{line_no}: unknown record {kind!r}")
    if not raw_nodes:
        raise ValueError(f"{path}: no node records")
    dense = {node_id: i for i, node_id in enumerate(sorted(raw_nodes))}
    nodes = [raw_nodes[node_id] for node_id in sorted(raw_nodes)]
    for u, v, _, _ in raw_edges:
        if u not in dense or v not in dense:
            raise ValueError(f"{path}: edge ({u}, {v}) references an unknown node")
    edges = [(dense[u], dense[v], length, time) for u, v, length, time in raw_edges]
    return RoadNetwork.from_edges(nodes, edges, name=name or path.stem)


def save_edge_list(network: RoadNetwork, path) -> None:
    """Write a network in the ``node`` / ``edge`` line format (round-trips)."""
    path = Path(path)
    lines = [f"# road network {network.name}: {network.num_nodes} nodes, {network.num_edges} edges"]
    for i in range(network.num_nodes):
        # repr of python floats round-trips exactly (shortest exact form).
        lines.append(f"node {i} {float(network.node_x[i])!r} {float(network.node_y[i])!r}")
    for u in range(network.num_nodes):
        start, end = int(network.indptr[u]), int(network.indptr[u + 1])
        for k in range(start, end):
            lines.append(
                f"edge {u} {int(network.indices[k])} "
                f"{float(network.edge_length[k])!r} {float(network.edge_time[k])!r}"
            )
    path.write_text("\n".join(lines) + "\n")
