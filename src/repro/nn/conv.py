"""1-D convolutions, including the dilated causal convolution used by DDGNN.

The paper's temporal module (Eq. 3 and Eq. 7) is a *gated* dilated causal
convolution: two parallel dilated causal convolutions whose outputs are
combined as ``tanh(a) * sigmoid(b)``.  :class:`GatedTCNBlock` implements
exactly that combination; :class:`CausalConv1d` provides the underlying
left-padded convolution so that an output at step ``t`` only depends on
inputs at steps ``<= t``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concatenate


class Conv1d(Module):
    """Plain 1-D convolution over inputs shaped ``(batch, channels, length)``.

    Parameters
    ----------
    in_channels, out_channels:
        Number of input and output channels.
    kernel_size:
        Width of the convolution filter (the paper uses ``K = 3``).
    dilation:
        Spacing between kernel taps (Eq. 3's skipping distance ``d``).
    padding:
        Symmetric zero padding added to both ends of the sequence.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.padding = padding
        # weight[k] maps in_channels -> out_channels for kernel tap k.
        self.weight = Parameter(
            init.xavier_uniform((kernel_size, in_channels, out_channels), seed=seed)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @property
    def receptive_field(self) -> int:
        """Number of input steps each output step can see."""
        return (self.kernel_size - 1) * self.dilation + 1

    def _pad(self, x: Tensor, left: int, right: int) -> Tensor:
        if left == 0 and right == 0:
            return x
        batch, channels, _ = x.shape
        pieces = []
        if left:
            pieces.append(Tensor(np.zeros((batch, channels, left))))
        pieces.append(x)
        if right:
            pieces.append(Tensor(np.zeros((batch, channels, right))))
        return concatenate(pieces, axis=2)

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        if x.ndim != 3:
            raise ValueError("Conv1d expects input of shape (batch, channels, length)")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        padded = self._pad(x, self.padding, self.padding)
        length = padded.shape[2]
        out_length = length - (self.kernel_size - 1) * self.dilation
        if out_length <= 0:
            raise ValueError(
                "input sequence too short for this kernel size and dilation"
            )
        # (batch, channels, length) -> (batch, length, channels) so that each
        # tap can be applied as a matrix product against (in, out) weights.
        moved = padded.transpose(0, 2, 1)
        out = None
        for k in range(self.kernel_size):
            start = k * self.dilation
            window = moved[:, start:start + out_length, :]
            term = window @ self.weight[k]
            out = term if out is None else out + term
        if self.bias is not None:
            out = out + self.bias
        return out.transpose(0, 2, 1)


class CausalConv1d(Conv1d):
    """Dilated *causal* convolution (left padding only, same output length)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            dilation=dilation,
            padding=0,
            bias=bias,
            seed=seed,
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        left = (self.kernel_size - 1) * self.dilation
        padded = self._pad(x, left, 0)
        # Re-use the parent implementation without extra padding.
        original_padding = self.padding
        self.padding = 0
        try:
            out = Conv1d.forward(self, padded)
        finally:
            self.padding = original_padding
        return out


class GatedTCNBlock(Module):
    """Gated temporal convolution: ``tanh(conv_f(x)) * sigmoid(conv_g(x))``.

    This is Eq. 7 of the paper.  The tanh branch extracts the temporal
    features while the sigmoid branch acts as an information-flow gate.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        dilation: int = 1,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        seed_filter = None if seed is None else seed
        seed_gate = None if seed is None else seed + 1
        self.filter_conv = CausalConv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, seed=seed_filter
        )
        self.gate_conv = CausalConv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, seed=seed_gate
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
