"""Points, bounding boxes and distance metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class Point:
    """A 2-D location.

    Coordinates are interpreted by the distance function in use: planar
    kilometres for :func:`euclidean_distance` / :func:`manhattan_distance`,
    or (longitude, latitude) degrees for :func:`haversine_distance`.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in the same planar units."""
        return euclidean_distance(self, other)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def euclidean_distance(a: Point, b: Point) -> float:
    """Straight-line distance between two planar points.

    Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot`` so the
    scalar path is bit-for-bit identical to the NumPy-vectorized travel
    matrices (``hypot`` implementations may differ in the last ulp).
    """
    dx = a.x - b.x
    dy = a.y - b.y
    return math.sqrt(dx * dx + dy * dy)


def manhattan_distance(a: Point, b: Point) -> float:
    """L1 (city-block) distance between two planar points."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def haversine_distance(a: Point, b: Point) -> float:
    """Great-circle distance in kilometres for (longitude, latitude) points."""
    lon1, lat1, lon2, lat2 = map(math.radians, (a.x, a.y, b.x, b.y))
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError("bounding box maxima must not be smaller than minima")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the boundary of this box."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the nearest location inside the box."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Return a box grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether two boxes overlap (boundary contact counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Smallest box containing every point in ``points``."""
        points = list(points)
        if not points:
            raise ValueError("cannot build a bounding box from an empty point set")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))
