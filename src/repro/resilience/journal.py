"""Write-ahead event journal: the platform's per-epoch durability log.

One journal entry is appended after each completed platform epoch (one
arrival or wake-up plus the decision point it triggered).  An entry is a
plain JSON-serialisable dict recording everything the epoch decided that a
replay cannot re-derive deterministically on its own:

``seq``
    Zero-based epoch number (dense, strictly increasing).
``src``
    What drove the epoch: ``"a"`` (the next arrival event) or ``"w"``
    (the earliest wake-up).
``now``
    Simulated time of the epoch.  Python float repr round-trips exactly
    through JSON, so replay can require bit-equality.
``planned`` / ``counted`` / ``cpu`` / ``rung`` / ``repairs``
    Whether a plan was computed, whether it counted towards the CPU-time
    metric, its measured wall-clock cost (replay re-records the *original*
    measurement instead of re-planning), the degradation-ladder rung that
    served the epoch, and invariant repairs performed.
``dispatches`` / ``repositions``
    The executed ``[worker_id, task_id]`` dispatches and
    ``[worker_id, x, y, arrival]`` repositioning legs — the *outputs* of
    the planning call, which is exactly what makes replay independent of
    planner wall-clock behaviour.

Torn tails: a crash can cut the last line of a file journal mid-write.
``entries()`` therefore parses lines up to the first undecodable or
unterminated one and silently discards the rest — the half-written epoch
is simply redone live after replay, which the platform's resume contract
already guarantees to be equivalent.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, TextIO


class InMemoryJournal:
    """Journal backed by a Python list (tests, single-process recovery)."""

    def __init__(self) -> None:
        self._entries: List[Dict] = []

    def append(self, entry: Dict) -> None:
        self._entries.append(entry)

    def entries(self) -> Iterator[Dict]:
        return iter(list(self._entries))

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class FileJournal:
    """Append-only JSON-lines journal on disk.

    ``fsync=True`` makes every append durable against power loss at the
    cost of one fsync per epoch; the default flushes to the OS only, which
    survives process kills (the failure mode the tests exercise) without
    the fsync tax.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self._file: Optional[TextIO] = None

    def _handle(self):
        if self._file is None or self._file.closed:
            self._file = open(self.path, "a", encoding="utf-8")
        return self._file

    def append(self, entry: Dict) -> None:
        handle = self._handle()
        handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def entries(self) -> Iterator[Dict]:
        if not os.path.exists(self.path):
            return iter(())
        parsed: List[Dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail: the crash cut this write short
                try:
                    parsed.append(json.loads(line))
                except ValueError:
                    break  # corrupted tail: everything after is suspect
        return iter(parsed)

    def clear(self) -> None:
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
