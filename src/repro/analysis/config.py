"""Configuration of an analysis run.

:class:`AnalysisConfig` makes every project-specific fact injectable —
which packages are deterministic, which call sites are allowlisted, which
config fields are cache-exempt — so the same rule implementations run
against the live tree (via :func:`repro.analysis.registry.default_config`)
and against minimal test fixtures with their own miniature contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class AllowEntry:
    """One allowlisted (file, symbol) pair in a rule registry.

    ``path_suffix`` matches the end of a module's relpath; ``symbol`` is
    the canonical dotted call (``time.perf_counter``, ``os.environ``).
    Every entry must carry a written ``reason`` — the registry is the
    central record of *why* each exception is sound.
    """

    path_suffix: str
    symbol: str
    reason: str

    def matches(self, relpath: str, symbol: str) -> bool:
        return symbol == self.symbol and relpath.endswith(self.path_suffix)


@dataclass(frozen=True)
class CacheKeyContract:
    """Rule 'cache-key': every config field is key-relevant or exempt."""

    config_module: str  # relpath suffix holding the config dataclass
    config_class: str
    key_module: str  # relpath suffix holding the context-key construction
    key_var: str  # the variable the key tuple is assigned to
    #: field -> reason it may legitimately stay out of the context key.
    exempt: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsContract:
    """Rule 'metrics-partition': every metrics field is deterministic or
    declared wall-clock-exempt."""

    module: str
    metrics_class: str
    method: str = "deterministic_state"
    #: field -> reason it is excluded from the deterministic state.
    exempt: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class PoolContract:
    """Rule 'pool-picklability': the executor-boundary closure."""

    entry_module: str  # relpath suffix holding the pool entry point
    entry_function: str
    boundary_classes: Tuple[str, ...] = ()
    #: "<path_suffix>:<global name>" -> reason a module-global read is safe.
    allowed_globals: Dict[str, str] = field(default_factory=dict)
    #: path suffix -> reason: modules reached by the walk whose
    #: closure/handle/global checks are skipped wholesale (e.g. autograd
    #: internals whose closures are created and consumed in-process).
    exempt_modules: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything a run needs besides the file list."""

    #: fnmatch patterns (posix relpaths) selecting the modules on which
    #: the determinism and ordered-iteration rules are enforced.
    deterministic_globs: Tuple[str, ...] = ()
    determinism_allowlist: Tuple[AllowEntry, ...] = ()
    cache_key: Optional[CacheKeyContract] = None
    metrics: Optional[MetricsContract] = None
    pool: Optional[PoolContract] = None
    #: Report registry entries that no longer match anything.  Disabled
    #: automatically for partial-tree runs (``--paths``), where absence
    #: of a match proves nothing.
    check_stale_registry: bool = True

    def is_deterministic_module(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pattern) for pattern in self.deterministic_globs)
