"""Tests for the dependency learner, APPNP, DDGNN and the baselines."""

import numpy as np
import pytest

from repro.demand.appnp import APPNP
from repro.demand.baselines import GraphWaveNetDemandModel, LSTMDemandModel
from repro.demand.ddgnn import DDGNN
from repro.demand.dependency import DemandDependencyLearner, distance_adjacency, normalized_adjacency
from repro.demand.predictor import DemandPredictor, PredictedDemand
from repro.demand.training import DemandTrainer
from repro.nn.tensor import Tensor
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import GridSpec

M, K, HISTORY = 9, 3, 4


def synthetic_occupancy_dataset(num_samples=24, num_cells=M, k=K, history=HISTORY, seed=0):
    """Occupancy data with a learnable pattern: cell i active iff a 'source'
    cell was active in the previous window (a one-step demand dependency)."""
    rng = np.random.default_rng(seed)
    inputs = np.zeros((num_samples, history, num_cells, k))
    targets = np.zeros((num_samples, num_cells, k))
    for n in range(num_samples):
        windows = rng.random((history, num_cells, k)) < 0.25
        inputs[n] = windows.astype(float)
        # Target: cell j is active where cell (j-1) was active in the last window.
        last = windows[-1]
        targets[n] = np.roll(last, shift=1, axis=0).astype(float)
    return inputs, targets


class TestDependencyLearner:
    def test_adjacency_shape_and_normalisation(self):
        learner = DemandDependencyLearner(feature_dim=K, embedding_dim=8, seed=0)
        adjacency = learner(Tensor(np.random.default_rng(0).random((M, K))))
        assert adjacency.shape == (M, M)
        np.testing.assert_allclose(adjacency.data.sum(axis=1), np.ones(M), atol=1e-8)
        assert (adjacency.data >= 0).all()

    def test_rejects_wrong_feature_dim(self):
        learner = DemandDependencyLearner(feature_dim=K)
        with pytest.raises(ValueError):
            learner(Tensor(np.zeros((M, K + 1))))

    def test_normalized_adjacency_symmetric_rows(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        normalized = normalized_adjacency(adjacency)
        assert normalized.shape == (2, 2)
        np.testing.assert_allclose(normalized, normalized.T)

    def test_normalized_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_distance_adjacency_rows_sum_to_one(self):
        grid = GridSpec(BoundingBox(0, 0, 3, 3), 3, 3)
        adjacency = distance_adjacency(grid, scale=1.0)
        np.testing.assert_allclose(adjacency.sum(axis=1), np.ones(9), atol=1e-9)
        assert np.allclose(np.diag(adjacency), 0.0)


class TestAPPNP:
    def test_alpha_one_returns_input(self):
        appnp = APPNP(alpha=1.0, iterations=3, apply_relu=False)
        features = np.random.default_rng(0).random((5, 4))
        adjacency = np.full((5, 5), 0.2)
        out = appnp(Tensor(features), Tensor(adjacency))
        np.testing.assert_allclose(out.data, features)

    def test_propagation_mixes_neighbours(self):
        appnp = APPNP(alpha=0.0, iterations=1, apply_relu=False)
        features = np.array([[1.0], [0.0]])
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = appnp(Tensor(features), Tensor(adjacency))
        np.testing.assert_allclose(out.data, [[0.0], [1.0]])

    def test_shape_validation(self):
        appnp = APPNP()
        with pytest.raises(ValueError):
            appnp(Tensor(np.zeros((3, 2))), Tensor(np.zeros((4, 4))))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            APPNP(alpha=2.0)
        with pytest.raises(ValueError):
            APPNP(iterations=0)


class TestDDGNN:
    def test_forward_shape_and_range(self):
        model = DDGNN(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((HISTORY, M, K))))
        assert out.shape == (M, K)
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_batched_forward(self):
        model = DDGNN(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).random((2, HISTORY, M, K))))
        assert out.shape == (2, M, K)

    def test_input_validation(self):
        model = DDGNN(num_cells=M, k=K, history=HISTORY)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((HISTORY, M + 1, K))))

    def test_static_adjacency_override(self):
        grid = GridSpec(BoundingBox(0, 0, 3, 3), 3, 3)
        static = distance_adjacency(grid)
        model = DDGNN(num_cells=9, k=K, history=HISTORY, static_adjacency=static, seed=0)
        out = model.predict(np.random.default_rng(0).random((HISTORY, 9, K)))
        assert out.shape == (9, K)

    def test_training_reduces_loss(self):
        inputs, targets = synthetic_occupancy_dataset(num_samples=16)
        model = DDGNN(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        trainer = DemandTrainer(model, learning_rate=0.02, epochs=6, batch_size=8, patience=None, seed=0)
        result = trainer.fit(inputs, targets)
        assert result.losses[-1] < result.losses[0]

    def test_learns_persistent_demand_better_than_chance(self):
        """DDGNN must learn a simple persistence pattern (demand repeats)."""
        rng = np.random.default_rng(3)
        num_samples = 40
        inputs = np.zeros((num_samples, HISTORY, M, K))
        targets = np.zeros((num_samples, M, K))
        for n in range(num_samples):
            windows = (rng.random((HISTORY, M, K)) < 0.3).astype(float)
            inputs[n] = windows
            targets[n] = windows[-1]          # next window repeats the last one
        model = DDGNN(num_cells=M, k=K, history=HISTORY, hidden=12, seed=1)
        trainer = DemandTrainer(model, learning_rate=0.03, epochs=15, batch_size=8, patience=None, seed=1)
        trainer.fit(inputs[:32], targets[:32])
        evaluation = trainer.evaluate(inputs[32:], targets[32:])
        assert evaluation["average_precision"] > 0.5  # chance level is ~0.3


class TestBaselines:
    def test_lstm_shapes(self):
        model = LSTMDemandModel(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        out = model.predict(np.random.default_rng(0).random((HISTORY, M, K)))
        assert out.shape == (M, K)
        assert (out >= 0).all() and (out <= 1).all()

    def test_graph_wavenet_shapes(self):
        model = GraphWaveNetDemandModel(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        out = model.predict(np.random.default_rng(0).random((HISTORY, M, K)))
        assert out.shape == (M, K)

    def test_graph_wavenet_adaptive_adjacency_rows_normalised(self):
        model = GraphWaveNetDemandModel(num_cells=M, k=K, history=HISTORY, seed=0)
        adjacency = model.adaptive_adjacency()
        np.testing.assert_allclose(adjacency.data.sum(axis=1), np.ones(M), atol=1e-8)

    def test_lstm_training_reduces_loss(self):
        inputs, targets = synthetic_occupancy_dataset(num_samples=16)
        model = LSTMDemandModel(num_cells=M, k=K, history=HISTORY, hidden=8, seed=0)
        trainer = DemandTrainer(model, learning_rate=0.03, epochs=5, batch_size=8, patience=None, seed=0)
        result = trainer.fit(inputs, targets)
        assert result.losses[-1] < result.losses[0]

    def test_trainer_input_validation(self):
        model = LSTMDemandModel(num_cells=M, k=K, history=HISTORY)
        trainer = DemandTrainer(model, epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, HISTORY, M, K)), np.zeros((0, M, K)))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, HISTORY, M, K)), np.zeros((2, M, K)))


class TestDemandPredictor:
    def _grid(self):
        return GridSpec(BoundingBox(0, 0, 3, 3), 3, 3)

    def test_materialize_tasks_above_threshold(self):
        grid = self._grid()
        probabilities = np.zeros((9, K))
        probabilities[4, 1] = 0.9     # one hot cell/interval
        probabilities[2, 0] = 0.5     # below threshold
        demand = PredictedDemand(probabilities, window_start=100.0, delta_t=5.0, grid=grid)

        class _Stub:
            def predict(self, windows):
                return probabilities

        predictor = DemandPredictor(_Stub(), grid, delta_t=5.0, threshold=0.85, task_valid_duration=40.0)
        tasks = predictor.materialize_tasks(demand, start_task_id=1000)
        assert len(tasks) == 1
        task = tasks[0]
        assert task.predicted
        assert task.task_id == 1000
        assert task.publication_time == pytest.approx(105.0)   # window start + 1 * delta_t
        assert task.expiration_time == pytest.approx(145.0)
        assert grid.cell_index(task.location) == 4

    def test_hot_cells(self):
        grid = self._grid()
        probabilities = np.zeros((9, K))
        probabilities[3, 2] = 0.99
        demand = PredictedDemand(probabilities, 0.0, 1.0, grid)
        assert demand.hot_cells(0.85) == [3]

    def test_predict_tasks_end_to_end(self):
        grid = self._grid()

        class _Stub:
            def predict(self, windows):
                out = np.zeros((9, K))
                out[0, 0] = 1.0
                return out

        predictor = DemandPredictor(_Stub(), grid, delta_t=2.0, threshold=0.85, task_valid_duration=10.0)
        tasks = predictor.predict_tasks(np.zeros((HISTORY, 9, K)), window_start=50.0, start_task_id=7)
        assert len(tasks) == 1 and tasks[0].task_id == 7

    def test_invalid_parameters(self):
        grid = self._grid()

        class _Stub:
            def predict(self, windows):
                return np.zeros((9, K))

        with pytest.raises(ValueError):
            DemandPredictor(_Stub(), grid, delta_t=1.0, threshold=0.0)
        with pytest.raises(ValueError):
            DemandPredictor(_Stub(), grid, delta_t=1.0, task_valid_duration=0.0)
