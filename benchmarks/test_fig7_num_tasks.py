"""Figure 7: effect of the number of tasks |S| on assigned tasks and CPU time."""

from conftest import run_assignment_figure

from repro.experiments.config import ASSIGNMENT_METHODS

import pytest

#: Paper-figure/ablation sweep: marked slow (see pytest.ini).
pytestmark = pytest.mark.slow

METHODS = list(ASSIGNMENT_METHODS)


def _task_values(experiment):
    """Three |S| levels spanning the generated workload, mirroring Table III."""
    total = experiment.workload().instance.num_tasks
    return [max(1, int(total * f)) for f in (0.6, 0.8, 1.0)]


def test_fig7_effect_of_num_tasks_yueche(benchmark, yueche_experiment):
    values = _task_values(yueche_experiment)

    def run():
        return run_assignment_figure(
            yueche_experiment, "num_tasks", values, METHODS,
            "Fig. 7(a)/(b) — effect of |S| (Yueche)",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Shape: growing |S| (nested task subsets) should grow assigned tasks,
    # allowing a small tolerance for the myopic baselines.
    for method in METHODS:
        series = [r.assigned_tasks for r in rows if r.method == method]
        assert series[-1] >= series[0] * 0.85, f"{method} should gain tasks as |S| grows"


def test_fig7_effect_of_num_tasks_didi(benchmark, didi_experiment):
    values = _task_values(didi_experiment)

    def run():
        return run_assignment_figure(
            didi_experiment, "num_tasks", values, METHODS,
            "Fig. 7(c)/(d) — effect of |S| (DiDi)",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for method in METHODS:
        series = [r.assigned_tasks for r in rows if r.method == method]
        assert series[-1] >= series[0] * 0.85, method
