"""Streaming spatial-crowdsourcing simulator.

The simulator replays an :class:`~repro.core.problem.ATAInstance` as a
stream of worker/task arrivals, lets an assignment strategy (re)plan at
every decision point, executes the dispatched tasks with travel-time
semantics, and collects the two headline metrics of the paper's evaluation:
the total number of assigned tasks and the average CPU time per planning
call.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.platform import SCPlatform, PlatformConfig
from repro.simulation.runner import SimulationRunner, SimulationReport

__all__ = [
    "SimulationClock",
    "SimulationMetrics",
    "SCPlatform",
    "PlatformConfig",
    "SimulationRunner",
    "SimulationReport",
]
