"""Tests for the task multivariate time series (Eq. 2) and prediction metrics."""

import numpy as np
import pytest

from repro.core.task import Task
from repro.demand.metrics import (
    average_precision,
    precision_recall_at_threshold,
    precision_recall_curve,
    prediction_report,
)
from repro.demand.timeseries import (
    TaskMultivariateTimeSeries,
    build_time_series,
    sliding_windows,
    train_test_split_windows,
)
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import GridSpec


@pytest.fixture
def grid2x2():
    return GridSpec(BoundingBox(0, 0, 10, 10), rows=2, cols=2)


class TestBuildTimeSeries:
    def test_paper_example_vector(self, grid2x2):
        """Reproduce the Fig. 3 example: tasks in intervals 1 and 2 give <1,1,0>."""
        tasks = [
            Task(1, Point(1, 1), publication_time=0.5, expiration_time=100.0),
            Task(2, Point(1, 1), publication_time=1.5, expiration_time=100.0),
        ]
        series = build_time_series(tasks, grid2x2, start_time=0.0, end_time=3.0, delta_t=1.0, k=3)
        cell = grid2x2.cell_index(Point(1, 1))
        np.testing.assert_allclose(series.values[0, cell], [1.0, 1.0, 0.0])

    def test_binary_even_with_many_tasks(self, grid2x2):
        tasks = [Task(i, Point(1, 1), 0.1, 10.0) for i in range(5)]
        series = build_time_series(tasks, grid2x2, 0.0, 3.0, delta_t=1.0, k=3)
        cell = grid2x2.cell_index(Point(1, 1))
        assert series.values[0, cell, 0] == 1.0
        assert series.values.max() <= 1.0

    def test_tasks_outside_range_ignored(self, grid2x2):
        tasks = [Task(1, Point(1, 1), publication_time=100.0, expiration_time=140.0)]
        series = build_time_series(tasks, grid2x2, 0.0, 6.0, delta_t=1.0, k=3)
        assert series.values.sum() == 0.0

    def test_partial_trailing_window_dropped(self, grid2x2):
        series = build_time_series([], grid2x2, 0.0, 10.0, delta_t=1.0, k=3)
        assert series.num_windows == 3  # 10 // 3

    def test_window_start_times(self, grid2x2):
        series = build_time_series([], grid2x2, 5.0, 17.0, delta_t=1.0, k=3)
        assert series.window_start(0) == 5.0
        assert series.window_start(1) == 8.0

    def test_cell_series_shape(self, grid2x2):
        series = build_time_series([], grid2x2, 0.0, 12.0, delta_t=1.0, k=3)
        assert series.cell_series(0).shape == (4, 3)

    def test_validation_errors(self, grid2x2):
        with pytest.raises(ValueError):
            build_time_series([], grid2x2, 0.0, 10.0, delta_t=0.0, k=3)
        with pytest.raises(ValueError):
            build_time_series([], grid2x2, 0.0, 10.0, delta_t=1.0, k=1)
        with pytest.raises(ValueError):
            build_time_series([], grid2x2, 0.0, 1.0, delta_t=1.0, k=3)

    def test_occupancy_rate(self, grid2x2):
        tasks = [Task(1, Point(1, 1), 0.5, 10.0)]
        series = build_time_series(tasks, grid2x2, 0.0, 3.0, delta_t=1.0, k=3)
        assert series.occupancy_rate() == pytest.approx(1.0 / (4 * 3))

    def test_wrong_shape_rejected(self, grid2x2):
        with pytest.raises(ValueError):
            TaskMultivariateTimeSeries(np.zeros((2, 3, 3)), 0.0, 1.0, 3, grid2x2)


class TestSlidingWindows:
    def test_shapes(self, grid2x2):
        series = build_time_series([], grid2x2, 0.0, 30.0, delta_t=1.0, k=3)
        inputs, targets = sliding_windows(series, history=4)
        assert inputs.shape == (6, 4, 4, 3)
        assert targets.shape == (6, 4, 3)

    def test_target_is_next_window(self, grid2x2):
        tasks = [Task(1, Point(1, 1), publication_time=9.5, expiration_time=30.0)]
        series = build_time_series(tasks, grid2x2, 0.0, 30.0, delta_t=1.0, k=3)
        inputs, targets = sliding_windows(series, history=2)
        # The task lands in window 3, interval 0 (time 9.5).
        cell = grid2x2.cell_index(Point(1, 1))
        assert targets[1, cell, 0] == 1.0

    def test_insufficient_history_rejected(self, grid2x2):
        series = build_time_series([], grid2x2, 0.0, 9.0, delta_t=1.0, k=3)
        with pytest.raises(ValueError):
            sliding_windows(series, history=5)

    def test_train_test_split_chronological(self):
        inputs = np.arange(10)[:, None, None, None] * np.ones((10, 2, 3, 4))
        targets = np.arange(10)[:, None, None] * np.ones((10, 3, 4))
        tr_x, tr_y, te_x, te_y = train_test_split_windows(inputs, targets, 0.8)
        assert tr_x.shape[0] == 8 and te_x.shape[0] == 2
        assert te_x[0, 0, 0, 0] == 8.0  # later samples go to the test set


class TestMetrics:
    def test_perfect_predictions(self):
        probs = np.array([0.9, 0.95, 0.05, 0.1])
        targets = np.array([1.0, 1.0, 0.0, 0.0])
        precision, recall = precision_recall_at_threshold(probs, targets, 0.5)
        assert precision == 1.0 and recall == 1.0
        assert average_precision(probs, targets) > 0.95

    def test_random_predictions_have_lower_ap(self):
        rng = np.random.default_rng(0)
        targets = (rng.random(500) < 0.3).astype(float)
        random_probs = rng.random(500)
        informed_probs = targets * 0.8 + rng.random(500) * 0.2
        assert average_precision(informed_probs, targets) > average_precision(random_probs, targets)

    def test_threshold_sweep_monotone_recall(self):
        rng = np.random.default_rng(1)
        targets = (rng.random(200) < 0.4).astype(float)
        probs = rng.random(200)
        _, _, recalls = precision_recall_curve(probs, targets, step=0.1)
        # Recall can only drop as the threshold rises.
        assert all(recalls[i] >= recalls[i + 1] - 1e-12 for i in range(len(recalls) - 1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_at_threshold(np.zeros(3), np.zeros(4), 0.5)

    def test_prediction_report_fields(self):
        report = prediction_report(np.array([0.9, 0.2]), np.array([1.0, 0.0]))
        data = report.as_dict()
        assert data["threshold"] == 0.85
        assert data["positives"] == 1.0
        assert data["total"] == 2.0
        assert 0.0 <= data["average_precision"] <= 1.0
