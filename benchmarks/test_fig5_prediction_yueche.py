"""Figure 5: task-demand prediction on Yueche — AP, training and testing time
versus the time interval, for LSTM, Graph-WaveNet and DDGNN."""

from conftest import print_figure

from repro.experiments.config import PREDICTION_METHODS
from repro.experiments.prediction_experiments import PredictionExperiment
from repro.experiments.reporting import pivot_rows

import pytest

#: Paper-figure/ablation sweep: marked slow (see pytest.ini).
pytestmark = pytest.mark.slow

#: The paper sweeps delta_T in {5..9} seconds on the full trace; at benchmark
#: scale the trace is sparser, so the sweep uses proportionally longer
#: intervals while keeping the same structure (three increasing values).
DELTA_T_VALUES = (30.0, 45.0, 60.0)


def test_fig5_prediction_yueche(benchmark, bench_scale):
    experiment = PredictionExperiment(
        dataset="yueche", scale=bench_scale, k=3, methods=PREDICTION_METHODS, seed=0
    )

    def run_sweep():
        return experiment.run(DELTA_T_VALUES)

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    dicts = [row.as_dict() for row in rows]
    methods = list(PREDICTION_METHODS)
    print_figure(
        "Fig. 5(a) — Average Precision vs delta_T (Yueche)",
        pivot_rows(dicts, "delta_t", "method", "average_precision"),
        ["delta_t", *methods],
    )
    print_figure(
        "Fig. 5(c) — training time (s) vs delta_T (Yueche)",
        pivot_rows(dicts, "delta_t", "method", "training_time"),
        ["delta_t", *methods],
    )
    print_figure(
        "Fig. 5(d) — testing time (s) vs delta_T (Yueche)",
        pivot_rows(dicts, "delta_t", "method", "testing_time"),
        ["delta_t", *methods],
    )

    # Shape checks: every method produces a sane AP, and DDGNN is not
    # dominated by the weakest baseline on average (the paper's headline).
    by_method = {m: [r.average_precision for r in rows if r.method == m] for m in methods}
    for method, values in by_method.items():
        assert all(0.0 <= v <= 1.0 for v in values), method
    mean = {m: sum(v) / len(v) for m, v in by_method.items()}
    assert mean["DDGNN"] >= min(mean.values()) - 0.05


def test_fig5b_assigned_tasks_by_predictor(benchmark, bench_scale):
    """Fig. 5(b): tasks assigned by DTA+TP when planning with each predictor.

    The paper reports this panel for every delta_T; the assignment replay is
    the expensive part, so the benchmark reproduces it at the default
    interval only — the paper itself notes the panel is flat in delta_T.
    """
    experiment = PredictionExperiment(
        dataset="yueche", scale=bench_scale, k=3, methods=PREDICTION_METHODS,
        seed=0, include_assignment=True,
    )

    def run_single():
        return experiment.run_for_delta_t(DELTA_T_VALUES[0])

    rows = benchmark.pedantic(run_single, rounds=1, iterations=1)
    print_figure(
        "Fig. 5(b) — number of assigned tasks by predictor (Yueche)",
        [{"method": r.method, "assigned_tasks": r.assigned_tasks} for r in rows],
        ["method", "assigned_tasks"],
    )
    for row in rows:
        assert row.assigned_tasks is not None and row.assigned_tasks >= 0
