"""Pool fixture: a reachable module covered by an exempt_modules entry.

The lambda below is a violation unless the test's PoolContract exempts
this module wholesale.
"""


def exempt_helper(values):
    doubler = lambda value: value * 2
    return [doubler(v) for v in values]
