"""One entry point for the ``repro.*`` logging hierarchy.

Every diagnostic in the codebase goes through a namespaced stdlib
logger:

* ``repro.resilience.platform`` — journal/checkpoint recovery, rejected
  events, resume fallbacks;
* ``repro.resilience.selfheal`` — incremental-cache invariant
  violations and repairs;
* ``repro.assignment.executor`` — parallel-dispatch failures and serial
  fallbacks;
* ``repro.obs`` — the observability layer itself.

All of them are children of the ``repro`` root logger, so one
:func:`configure_logging` call makes the whole tree visible, and the
``subsystems`` mapping turns individual branches up or down — e.g.
chaos-test triage wants ``repro.resilience`` at DEBUG while the rest
stays at WARNING.  Libraries must not touch global logging config on
import, which is why this is an explicit entry point and not an import
side effect; calling it twice reconfigures instead of stacking handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import Dict, Optional

__all__ = ["configure_logging"]

#: Marker attribute identifying the handler this module installed, so
#: reconfiguration replaces it instead of accumulating duplicates.
_HANDLER_MARK = "_repro_obs_handler"

_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(
    level: int | str = logging.INFO,
    subsystems: Optional[Dict[str, int | str]] = None,
    stream=None,
    fmt: str = _DEFAULT_FORMAT,
) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Parameters
    ----------
    level:
        Level of the ``repro`` root logger (name or numeric).
    subsystems:
        Per-branch overrides, e.g. ``{"resilience": "DEBUG",
        "assignment.executor": "ERROR"}``.  Bare names are resolved
        relative to ``repro.``; fully-qualified ``repro.*`` names pass
        through unchanged.
    stream:
        Destination stream (default ``sys.stderr``).
    fmt:
        Handler format string.
    """
    root = logging.getLogger("repro")
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    # Records are handled here; the root logger's lastResort handler
    # would otherwise print them a second time.
    root.propagate = False
    for name, branch_level in (subsystems or {}).items():
        qualified = name if name.startswith("repro") else f"repro.{name}"
        logging.getLogger(qualified).setLevel(branch_level)
    return root
