"""Tests for Module mechanics and the dense/utility layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleMechanics:
    def test_parameters_collected_recursively(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        params = model.parameters()
        # 2 weights + 2 biases
        assert len(params) == 4
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_parameters_unique_names(self):
        model = nn.Sequential(nn.Linear(3, 3), nn.Linear(3, 1))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_zero_grad_clears_gradients(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        source = nn.Sequential(nn.Linear(3, 4, seed=1), nn.Linear(4, 2, seed=2))
        target = nn.Sequential(nn.Linear(3, 4, seed=7), nn.Linear(4, 2, seed=8))
        target.load_state_dict(source.state_dict())
        x = np.random.default_rng(0).standard_normal((5, 3))
        np.testing.assert_allclose(source(Tensor(x)).data, target(Tensor(x)).data)

    def test_load_state_dict_rejects_wrong_keys(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros((2, 2))})

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model.modules[0].training
        model.train()
        assert model.modules[0].training


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3)
        out = layer(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias_option(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_linear_fits_linear_function(self):
        """A single Linear layer should recover a known linear mapping."""
        rng = np.random.default_rng(0)
        true_w = rng.standard_normal((3, 1))
        x = rng.standard_normal((200, 3))
        y = x @ true_w + 0.5
        layer = nn.Linear(3, 1, seed=0)
        optimizer = nn.Adam(layer.parameters(), lr=0.05)
        loss_fn = nn.MSELoss()
        for _ in range(300):
            optimizer.zero_grad()
            loss = loss_fn(layer(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)
        np.testing.assert_allclose(layer.bias.data, [0.5], atol=0.05)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5, seed=0)
        layer.eval()
        x = np.random.default_rng(0).standard_normal((4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_training_mode_zeroes_some_entries(self):
        layer = nn.Dropout(0.5, seed=0)
        x = np.ones((100, 10))
        out = layer(Tensor(x)).data
        assert (out == 0.0).any()
        # Inverted dropout keeps the expectation roughly constant.
        assert abs(out.mean() - 1.0) < 0.2

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestEmbeddingAndLayerNorm:
    def test_embedding_lookup_shape(self):
        emb = nn.Embedding(10, 4, seed=0)
        out = emb(np.array([1, 2, 3]))
        assert out.shape == (3, 4)

    def test_embedding_out_of_range(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_layernorm_normalises_last_axis(self):
        ln = nn.LayerNorm(8)
        x = np.random.default_rng(0).standard_normal((3, 8)) * 5 + 2
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(3), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(3), atol=1e-2)


class TestActivationsAndInit:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_softmax_module(self):
        out = nn.Softmax()(Tensor([[0.0, 0.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_leaky_relu(self):
        out = nn.activations.LeakyReLU(0.1)(Tensor([-2.0, 3.0]))
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_xavier_bounds(self):
        w = nn.init.xavier_uniform((100, 100), seed=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit + 1e-12

    def test_kaiming_shape_and_fans(self):
        w = nn.init.kaiming_uniform((16, 8, 3), seed=0)
        assert w.shape == (16, 8, 3)
