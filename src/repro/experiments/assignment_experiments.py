"""Figures 7-11: task-assignment performance under parameter sweeps.

Each figure varies a single parameter (number of tasks, number of workers,
reachable distance, worker availability window, task valid time) and
compares the five methods on the number of assigned tasks and the CPU time
per planning instance.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.assignment.planner import PlannerConfig
from repro.core.problem import ATAInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datasets.didi import generate_didi
from repro.datasets.synthetic import SyntheticWorkload
from repro.datasets.yueche import generate_yueche
from repro.demand.ddgnn import DDGNN
from repro.demand.predictor import DemandPredictor
from repro.demand.timeseries import build_time_series, sliding_windows
from repro.demand.training import DemandTrainer
from repro.experiments.config import ASSIGNMENT_METHODS, ExperimentScale
from repro.simulation.platform import PlatformConfig
from repro.simulation.runner import SimulationRunner
from repro.spatial.grid import GridSpec


@dataclass
class AssignmentRow:
    """One (parameter value, method) cell of Figures 7-11.

    The health columns make a degraded or self-healed run visible right
    in the results table: a row whose ``degraded_epochs`` or
    ``invariant_repairs`` is non-zero was NOT served entirely by the
    full-quality planner, and its headline numbers should be read with
    that in mind.
    """

    dataset: str
    parameter: str
    value: float
    method: str
    assigned_tasks: int
    mean_cpu_time: float
    #: Counted epochs served below the ``full`` degradation rung.
    degraded_epochs: int = 0
    #: Corrupted-cache heal events during the run.
    invariant_repairs: int = 0
    #: Malformed events rejected at ingestion.
    rejected_events: int = 0
    #: Replan-latency percentiles across all epoch classes, in ms
    #: (0.0 when the run recorded no counted planning epoch).
    replan_p50_ms: float = 0.0
    replan_p95_ms: float = 0.0
    replan_p99_ms: float = 0.0

    def as_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass
class AssignmentExperiment:
    """Driver for one sweep (one figure) on one dataset."""

    dataset: str = "yueche"
    scale: ExperimentScale = field(default_factory=ExperimentScale.quick)
    methods: Sequence[str] = tuple(ASSIGNMENT_METHODS)
    seed: int = 0
    k: int = 4
    delta_t: float = 5.0
    train_predictor: bool = True

    def __post_init__(self) -> None:
        self._workload: Optional[SyntheticWorkload] = None
        self._predicted_tasks: Optional[List[Task]] = None

    # ------------------------------------------------------------------ #
    # Workload and prediction setup
    # ------------------------------------------------------------------ #
    def workload(self) -> SyntheticWorkload:
        if self._workload is None:
            if self.dataset.lower() == "yueche":
                self._workload = generate_yueche(scale=self.scale.workload_scale, seed=self.seed + 11)
            elif self.dataset.lower() == "didi":
                self._workload = generate_didi(scale=self.scale.workload_scale, seed=self.seed + 23)
            else:
                raise ValueError(f"unknown dataset {self.dataset!r}")
        return self._workload

    def predicted_tasks(self) -> List[Task]:
        """Predicted tasks used by DTA+TP and DATA-WA (trained DDGNN)."""
        if self._predicted_tasks is not None:
            return self._predicted_tasks
        workload = self.workload()
        grid = GridSpec(workload.city.bounds, rows=self.scale.grid_rows, cols=self.scale.grid_cols)
        all_tasks = workload.historical_tasks + workload.instance.tasks
        end = workload.config.history_horizon + workload.config.horizon
        series = build_time_series(all_tasks, grid, 0.0, end, delta_t=self.delta_t, k=self.k)
        history = self.scale.history

        model = DDGNN(num_cells=grid.num_cells, k=self.k, history=history, seed=self.seed)
        if self.train_predictor and series.num_windows > history + 2:
            inputs, targets = sliding_windows(series, history=history)
            trainer = DemandTrainer(model, epochs=max(2, self.scale.epochs // 2), seed=self.seed)
            trainer.fit(inputs, targets)

        predictor = DemandPredictor(
            model,
            grid,
            delta_t=self.delta_t,
            threshold=0.85,
            task_valid_duration=workload.config.task_valid_time,
            historical_tasks=workload.historical_tasks,
        )
        predicted: List[Task] = []
        next_id = 5_000_000
        eval_start_window = int(workload.config.history_horizon // series.window_length)
        for window in range(max(eval_start_window, history), series.num_windows):
            history_slice = series.values[window - history:window]
            tasks = predictor.predict_tasks(history_slice, series.window_start(window), next_id)
            next_id += len(tasks) + 1
            predicted.extend(tasks)
        self._predicted_tasks = predicted
        return predicted

    # ------------------------------------------------------------------ #
    # Instance derivation for each sweep
    # ------------------------------------------------------------------ #
    def _base_instance(self) -> ATAInstance:
        return self.workload().instance

    def _with_num_tasks(self, value: int) -> ATAInstance:
        base = self._base_instance()
        return base.restrict(num_tasks=min(value, base.num_tasks), seed=self.seed)

    def _with_num_workers(self, value: int) -> ATAInstance:
        base = self._base_instance()
        return base.restrict(num_workers=min(value, base.num_workers), seed=self.seed)

    def _with_reachable_distance(self, value: float) -> ATAInstance:
        base = self._base_instance()
        workers = [dataclasses.replace(w, reachable_distance=float(value)) for w in base.workers]
        return ATAInstance(workers, list(base.tasks), travel=base.travel, name=base.name)

    def _with_available_time(self, hours: float) -> ATAInstance:
        base = self._base_instance()
        seconds = float(hours) * 3600.0
        workers = [
            dataclasses.replace(w, off_time=w.on_time + seconds, windows=())
            for w in base.workers
        ]
        return ATAInstance(workers, list(base.tasks), travel=base.travel, name=base.name)

    def _with_valid_time(self, seconds: float) -> ATAInstance:
        base = self._base_instance()
        tasks = [
            dataclasses.replace(t, expiration_time=t.publication_time + float(seconds))
            for t in base.tasks
        ]
        return ATAInstance(list(base.workers), tasks, travel=base.travel, name=base.name)

    _SWEEPS = {
        "num_tasks": "_with_num_tasks",
        "num_workers": "_with_num_workers",
        "reachable_distance": "_with_reachable_distance",
        "available_time": "_with_available_time",
        "valid_time": "_with_valid_time",
    }

    # ------------------------------------------------------------------ #
    def run_single(self, parameter: str, value: float, methods: Optional[Sequence[str]] = None) -> List[AssignmentRow]:
        """Run every method on the instance derived for one parameter value."""
        if parameter not in self._SWEEPS:
            raise ValueError(f"unknown sweep parameter {parameter!r}; choose from {sorted(self._SWEEPS)}")
        methods = list(methods or self.methods)
        instance = getattr(self, self._SWEEPS[parameter])(value)
        needs_prediction = any(m.upper() in ("DTA+TP", "DATA-WA") for m in methods)
        predicted = self.predicted_tasks() if needs_prediction else []

        runner = SimulationRunner(
            instance,
            platform_config=PlatformConfig(replan_interval=self.scale.replan_interval),
            planner_config=PlannerConfig(max_reachable=6, max_sequence_length=2, node_budget=4000),
            predicted_tasks=predicted,
        )
        rows: List[AssignmentRow] = []
        for method in methods:
            report = runner.run_strategy(method)
            latency = report.replan_latency.get("overall", {})
            rows.append(
                AssignmentRow(
                    dataset=self.dataset,
                    parameter=parameter,
                    value=float(value),
                    method=method,
                    assigned_tasks=report.assigned_tasks,
                    mean_cpu_time=report.mean_cpu_time,
                    degraded_epochs=report.degraded_epochs,
                    invariant_repairs=report.invariant_repairs,
                    rejected_events=report.rejected_events,
                    replan_p50_ms=float(latency.get("p50", 0.0)),
                    replan_p95_ms=float(latency.get("p95", 0.0)),
                    replan_p99_ms=float(latency.get("p99", 0.0)),
                )
            )
        return rows

    def run_sweep(self, parameter: str, values: Sequence[float], methods: Optional[Sequence[str]] = None) -> List[AssignmentRow]:
        """Run a whole figure: every value of the sweep, every method."""
        rows: List[AssignmentRow] = []
        for value in values:
            rows.extend(self.run_single(parameter, value, methods=methods))
        return rows
