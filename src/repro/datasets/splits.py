"""Chronological splitting utilities for task streams."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.task import Task


def split_tasks_by_time(tasks: Sequence[Task], fraction: float = 0.8) -> Tuple[List[Task], List[Task]]:
    """Split tasks chronologically into (early, late) parts.

    The paper trains on 80% of the data and tests on 20%; a chronological
    split avoids leaking future demand into training.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    ordered = sorted(tasks, key=lambda task: task.publication_time)
    cut = int(round(len(ordered) * fraction))
    cut = min(max(cut, 0), len(ordered))
    return ordered[:cut], ordered[cut:]


def split_tasks_at(tasks: Sequence[Task], time: float) -> Tuple[List[Task], List[Task]]:
    """Split tasks into those published before and after ``time``."""
    before = [task for task in tasks if task.publication_time < time]
    after = [task for task in tasks if task.publication_time >= time]
    return before, after
