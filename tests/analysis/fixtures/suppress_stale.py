"""Suppression fixture: a directive whose violation was already fixed."""

from typing import Set


def sorted_list(items: Set[int]):
    # repro: allow[ordered-iteration] -- fixture: stale, the line below is already sorted
    return sorted(items)
